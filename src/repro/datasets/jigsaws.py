"""Synthetic surrogate for the JIGSAWS surgical-gesture dataset.

The paper's classification experiment (Section 6.1) uses the JHU-ISI
Gesture and Skill Assessment Working Set: kinematic recordings of eight
surgeons performing three tasks (Knot Tying, Needle Passing, Suturing) on
the da Vinci robot, restricted to the 18 kinematic variables representing
the *rotations* of the master and patient-side manipulators, with 15
gesture labels.  Models are trained on surgeon "D" and tested on the
others.

JIGSAWS is restricted-access and this environment has no network, so we
substitute a generative surrogate that preserves the structure the
experiment probes:

* each **gesture** is a prototype over latent **angular** variables —
  the manipulator orientations; samples add von Mises measurement noise
  (task-specific concentration κ) plus a per-surgeon systematic offset,
  which is what makes leave-surgeon-out evaluation a domain-shift
  problem;
* the three **tasks** differ in noise level, surgeon variability, and in
  how strongly gesture prototypes concentrate near the 0/2π wrap point
  (``wrap_bias``) — wrap-straddling classes are the failure mode of
  interval (level) encodings;
* two **feature modes**: ``"angles"`` (default) exposes the latent angles
  directly — 18 angular channels, the cleanest probe of circular
  encodings; ``"rotation_matrix"`` exposes the 18 entries of the two
  3 × 3 rotation matrices built from Euler angles, mimicking the raw
  JIGSAWS variables (whose value→orientation inverse is multimodal; see
  EXPERIMENTS.md for how this changes the basis-set ranking).

Task parameters were calibrated (see EXPERIMENTS.md) so the experiment
reproduces the paper's qualitative Table 1 shape on the default mode.
See DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from .base import ClassificationSplit

__all__ = ["TaskSpec", "JIGSAWS_TASKS", "SURGEONS", "make_jigsaws_like"]

TWO_PI = 2.0 * math.pi

#: Surgeon identifiers as in JIGSAWS (eight surgeons, "B" … "I").
SURGEONS = ("B", "C", "D", "E", "F", "G", "H", "I")

_FEATURE_MODES = ("angles", "rotation_matrix")


@dataclass(frozen=True)
class TaskSpec:
    """Generator parameters of one surgical task.

    Attributes
    ----------
    kappa:
        Von Mises concentration of the measurement noise (higher = cleaner
        kinematics, easier task).
    wrap_bias:
        Concentration of gesture prototypes around the 0/2π wrap point;
        0 places prototypes uniformly, larger values crowd them across the
        wrap — harder for interval (level) encodings.
    surgeon_sigma:
        Standard deviation (radians) of the per-surgeon systematic offset
        (the leave-surgeon-out domain shift).
    samples_per_gesture:
        Samples per (gesture, surgeon) pair.
    """

    kappa: float
    wrap_bias: float
    surgeon_sigma: float
    samples_per_gesture: int = 20


#: The three JIGSAWS tasks, ordered as in Table 1.  Difficulty (noise,
#: surgeon shift) and wrap pressure increase from Knot Tying to Suturing,
#: mirroring the relative accuracies the paper reports.  Values calibrated
#: against the paper's qualitative shape; see EXPERIMENTS.md.
JIGSAWS_TASKS: dict[str, TaskSpec] = {
    "knot_tying": TaskSpec(kappa=4.5, wrap_bias=1.5, surgeon_sigma=0.25),
    "needle_passing": TaskSpec(kappa=4.0, wrap_bias=2.0, surgeon_sigma=0.28),
    "suturing": TaskSpec(kappa=3.5, wrap_bias=3.5, surgeon_sigma=0.30),
}


def _latent_channels(features: str, num_channels: int) -> int:
    """Validate a feature mode and return its latent angle count."""
    if features not in _FEATURE_MODES:
        raise InvalidParameterError(
            f"features must be one of {_FEATURE_MODES}, got {features!r}"
        )
    if features == "rotation_matrix":
        if num_channels % 9 != 0:
            raise InvalidParameterError(
                "rotation_matrix mode needs num_channels divisible by 9, "
                f"got {num_channels}"
            )
        return num_channels // 3  # 3 Euler angles per 9 entries
    if num_channels < 1:
        raise InvalidParameterError(f"need at least 1 channel, got {num_channels}")
    return num_channels


def _gesture_prototypes(
    rng: np.random.Generator, spec: TaskSpec, num_gestures: int, num_latent: int
) -> np.ndarray:
    """Angular gesture prototypes, optionally crowded near the wrap."""
    if spec.wrap_bias == 0.0:
        return rng.uniform(0.0, TWO_PI, size=(num_gestures, num_latent))
    return np.mod(
        rng.vonmises(0.0, spec.wrap_bias, size=(num_gestures, num_latent)), TWO_PI
    )


def _group_samples(
    prototype: np.ndarray,
    offset: np.ndarray,
    kappa: float,
    count: int,
    rng: np.random.Generator,
    features: str,
) -> np.ndarray:
    """Samples of one (surgeon, gesture) group: prototype + offset + noise.

    The generation unit shared by :func:`make_jigsaws_like` (which draws
    every group from one sequential stream) and
    :class:`repro.streaming.JigsawsStream` (which gives each group its
    own RNG substream so groups can be generated out of core).
    """
    num_latent = prototype.shape[0]
    noise = rng.vonmises(0.0, kappa, size=(count, num_latent))
    angles = np.mod(prototype + offset + noise, TWO_PI)
    if features == "rotation_matrix":
        matrices = [
            _euler_to_matrix(
                angles[:, 3 * m], angles[:, 3 * m + 1], angles[:, 3 * m + 2]
            )
            for m in range(num_latent // 3)
        ]
        return np.concatenate(matrices, axis=1)
    return angles


def _euler_to_matrix(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Rotation-matrix entries ``R = Rz(a) · Ry(b) · Rx(c)``, flattened.

    Vectorised over leading dimensions; returns the 9 entries along the
    trailing axis in row-major order.
    """
    ca, sa = np.cos(a), np.sin(a)
    cb, sb = np.cos(b), np.sin(b)
    cc, sc = np.cos(c), np.sin(c)
    return np.stack(
        [
            ca * cb, ca * sb * sc - sa * cc, ca * sb * cc + sa * sc,
            sa * cb, sa * sb * sc + ca * cc, sa * sb * cc - ca * sc,
            -sb, cb * sc, cb * cc,
        ],
        axis=-1,
    )


def make_jigsaws_like(
    task: str = "knot_tying",
    num_gestures: int = 15,
    num_channels: int = 18,
    train_surgeon: str = "D",
    surgeon_sigma: float | None = None,
    features: str = "angles",
    seed: SeedLike = None,
) -> ClassificationSplit:
    """Generate a surrogate surgical-gesture classification dataset.

    Parameters
    ----------
    task:
        One of ``"knot_tying"``, ``"needle_passing"``, ``"suturing"``
        (or any key previously added to :data:`JIGSAWS_TASKS`).
    num_gestures:
        Number of gesture classes (15 in JIGSAWS).
    num_channels:
        Number of kinematic channels (18 in the paper's subset).  In
        ``"rotation_matrix"`` mode this must be a multiple of 9 (each
        rotation matrix contributes 9 entries from 3 latent angles).
    train_surgeon:
        The surgeon whose recordings form the training set (paper: "D").
    surgeon_sigma:
        Override for the task's per-surgeon offset std (radians);
        ``None`` uses the task specification.
    features:
        ``"angles"`` — channels are the latent angles in ``[0, 2π)``;
        ``"rotation_matrix"`` — channels are rotation-matrix entries in
        ``[−1, 1]`` derived from the latent Euler angles.
    seed:
        Randomness source; one seed fixes prototypes, offsets and samples.

    Returns
    -------
    ClassificationSplit
        Features of shape ``(n, num_channels)``; labels are gesture ids
        ``0 … num_gestures − 1``.  ``metadata["feature_kind"]`` records
        the mode; for ``"angles"`` the period is ``2π``, for
        ``"rotation_matrix"`` the value range is ``[−1, 1]``.
    """
    if task not in JIGSAWS_TASKS:
        raise InvalidParameterError(
            f"unknown task {task!r}; choose from {sorted(JIGSAWS_TASKS)}"
        )
    if train_surgeon not in SURGEONS:
        raise InvalidParameterError(
            f"unknown surgeon {train_surgeon!r}; choose from {SURGEONS}"
        )
    if num_gestures < 2:
        raise InvalidParameterError(f"need at least 2 gestures, got {num_gestures}")
    num_latent = _latent_channels(features, num_channels)

    spec = JIGSAWS_TASKS[task]
    sigma = spec.surgeon_sigma if surgeon_sigma is None else float(surgeon_sigma)
    if sigma < 0:
        raise InvalidParameterError(f"surgeon_sigma must be non-negative, got {sigma}")
    proto_rng, offset_rng, noise_rng = ensure_rng(seed).spawn(3)

    # Gesture prototypes: angular positions, optionally crowded near the wrap.
    prototypes = _gesture_prototypes(proto_rng, spec, num_gestures, num_latent)

    # Per-surgeon systematic offsets (style differences between surgeons).
    offsets = offset_rng.normal(0.0, sigma, size=(len(SURGEONS), num_latent))

    features_list: list[np.ndarray] = []
    labels_list: list[np.ndarray] = []
    surgeon_ids: list[np.ndarray] = []
    n = spec.samples_per_gesture
    for s_idx in range(len(SURGEONS)):
        for gesture in range(num_gestures):
            sample = _group_samples(
                prototypes[gesture], offsets[s_idx], spec.kappa, n, noise_rng, features
            )
            features_list.append(sample)
            labels_list.append(np.full(n, gesture, dtype=np.int64))
            surgeon_ids.append(np.full(n, s_idx, dtype=np.int64))

    x = np.concatenate(features_list, axis=0)
    y = np.concatenate(labels_list, axis=0)
    s = np.concatenate(surgeon_ids, axis=0)

    train_mask = s == SURGEONS.index(train_surgeon)
    metadata = {
        "name": f"jigsaws-like/{task}",
        "task": task,
        "kappa": spec.kappa,
        "wrap_bias": spec.wrap_bias,
        "samples_per_gesture": spec.samples_per_gesture,
        "num_gestures": num_gestures,
        "num_channels": num_channels,
        "train_surgeon": train_surgeon,
        "surgeon_sigma": sigma,
        "feature_kind": features,
        "feature_period": TWO_PI if features == "angles" else None,
        "feature_range": (-1.0, 1.0) if features == "rotation_matrix" else (0.0, TWO_PI),
    }
    return ClassificationSplit(
        train_features=x[train_mask],
        train_labels=y[train_mask],
        test_features=x[~train_mask],
        test_labels=y[~train_mask],
        metadata=metadata,
    )
