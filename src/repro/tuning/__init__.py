"""repro.tuning — the measure → consume → enforce performance loop.

Every performance knob in this repository used to be a constant tuned on
one development machine.  This package closes the loop on the host that
actually runs the workload:

* :mod:`repro.tuning.calibration` — the **artifact**: a versioned,
  schema-checked JSON file of measured knobs (kernel crossovers, the
  allocation budget, streaming chunk rows, worker counts), written
  atomically and activated through the ``REPRO_CALIBRATION`` environment
  variable.  :func:`resolve_knob` gives every consumer the one
  precedence rule: explicit arg > env var > calibration > built-in.
* :mod:`repro.tuning.measure` — the **measurement**: ``repro calibrate``
  sweeps the xor / xor-mt / gemm / topk throughput surface plus the
  streaming-chunk and worker-scaling curves, derives the knob values,
  and persists both the artifact and the full crossover surface
  (``BENCH_calibration.json``).
* :mod:`repro.tuning.deadline` — the **gate**: ``repro check-deadline``
  replays a recorded workload spec (JSON: target, shape, latency / RSS
  budget) against the calibrated configuration and fails non-zero on a
  miss, which is what CI runs.

Calibration moves only crossover, blocking and scheduling decisions —
results are bit-identical for any artifact (property-tested with
adversarial artifacts in ``tests/tuning/``).

>>> from repro.tuning import Calibration
>>> Calibration.from_knobs({"runtime": {"workers": 2}}).get("runtime", "workers")
2
"""

from __future__ import annotations

import importlib

from .calibration import (
    ENV_CALIBRATION,
    KNOB_SCHEMA,
    SCHEMA_VERSION,
    Calibration,
    active_calibration,
    invalidate_cache,
    load_calibration,
    resolve_knob,
    save_calibration,
)

__all__ = [
    "SCHEMA_VERSION",
    "ENV_CALIBRATION",
    "KNOB_SCHEMA",
    "Calibration",
    "load_calibration",
    "save_calibration",
    "active_calibration",
    "resolve_knob",
    "invalidate_cache",
    # lazy (imported on first attribute access; they pull in the heavy
    # kernel / streaming / serving layers, which this package's consumers
    # must not pay for just to read a knob):
    "calibrate",
    "default_knobs",
    "WorkloadSpec",
    "load_workload",
    "run_workload",
    "check_deadline",
]

#: Lazily resolved attribute → submodule.  ``measure`` and ``deadline``
#: import :mod:`repro.hdc` / :mod:`repro.streaming` / :mod:`repro.serve`;
#: importing them eagerly here would create an import cycle (the kernel
#: layer resolves its knobs through :mod:`repro.tuning.calibration`).
_LAZY = {
    "calibrate": "measure",
    "default_knobs": "measure",
    "WorkloadSpec": "deadline",
    "load_workload": "deadline",
    "run_workload": "deadline",
    "check_deadline": "deadline",
}


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{submodule}", __name__)
    return getattr(module, name)


def __dir__() -> list[str]:
    return sorted(__all__)
