"""The calibration artifact: measured performance knobs as data.

Every performance knob in this repository — the kernel crossover, the
allocation budget, the streaming chunk size, the worker count — used to
be a built-in constant tuned on one development machine.  This module
turns them into a **versioned, schema-checked JSON artifact** measured
on the host that will actually run the workload (``repro calibrate``,
:mod:`repro.tuning.measure`) and consumed by every layer that owns a
knob (kernel dispatch, the streaming trainer, the serving engine).

The contract:

* **Artifact** — one JSON file with a ``schema`` version, host
  provenance, and a ``knobs`` mapping of section → name → value.
  Written atomically (temp file + ``os.replace``), validated on load;
  an unreadable or wrong-schema file raises
  :class:`~repro.exceptions.CalibrationError` instead of silently
  mis-tuning the process.
* **Activation** — the ``REPRO_CALIBRATION`` environment variable
  points at the artifact.  When unset, every knob falls back to its
  built-in default, so nothing changes for uncalibrated processes.
* **Precedence** — consumers resolve each knob through
  :func:`resolve_knob`: an explicit argument wins, then the knob's own
  environment variable (``REPRO_KERNEL_BUDGET`` and friends), then the
  calibration artifact, then the built-in constant.
* **Bit-identity** — calibration only moves crossover, blocking and
  scheduling decisions.  Every consumer is bit-identical for any knob
  value (property-tested with adversarial artifacts in
  ``tests/tuning/``), so a stale or wrong artifact can cost time but
  never correctness.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
from pathlib import Path
from typing import Any, Callable, TypeVar, Union

from ..exceptions import CalibrationError

__all__ = [
    "SCHEMA_VERSION",
    "ENV_CALIBRATION",
    "KNOB_SCHEMA",
    "Calibration",
    "load_calibration",
    "save_calibration",
    "active_calibration",
    "resolve_knob",
    "register_cache",
    "invalidate_cache",
]

#: Artifact schema version this library writes and understands.
SCHEMA_VERSION = 1

#: Environment variable pointing at the active calibration artifact.
ENV_CALIBRATION = "REPRO_CALIBRATION"

T = TypeVar("T", int, float)


def _positive_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 1


def _positive_real(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and float(value) > 0.0
    )


#: The knobs a valid artifact may carry: section → name → validator.
#: Extra sections/names are rejected (a typo'd knob should fail loudly,
#: not silently fall back to the built-in).
KNOB_SCHEMA: dict[str, dict[str, Callable[[Any], bool]]] = {
    "kernels": {
        "gemm_crossover": _positive_real,
        "xor_mt_min_cells": _positive_int,
        "xor_mt_threads": _positive_int,
        "cell_budget": _positive_int,
    },
    "streaming": {
        "chunk_rows": _positive_int,
    },
    "ingest": {
        "block_rows": _positive_int,
        "fused_min_rows": _positive_int,
    },
    "cluster": {
        "workers": _positive_int,
    },
    "runtime": {
        "workers": _positive_int,
    },
    "serve": {
        "batch_window_ms": _positive_real,
        "batch_max": _positive_int,
        "max_queue": _positive_int,
        "proc_workers": _positive_int,
    },
}


class Calibration:
    """A loaded calibration artifact: validated knobs plus provenance.

    Construct with :meth:`from_knobs` (fresh measurement) or
    :func:`load_calibration` (from disk).  The payload is validated on
    construction — a :class:`Calibration` in hand is always usable.

    >>> cal = Calibration.from_knobs({"kernels": {"gemm_crossover": 24.0}})
    >>> cal.get("kernels", "gemm_crossover")
    24.0
    >>> cal.get("streaming", "chunk_rows") is None   # not measured
    True
    """

    __slots__ = ("payload", "path")

    def __init__(self, payload: dict, path: Union[Path, None] = None) -> None:
        _validate_payload(payload)
        self.payload = payload
        self.path = path

    @classmethod
    def from_knobs(
        cls, knobs: dict[str, dict[str, Any]], meta: Union[dict, None] = None
    ) -> "Calibration":
        """Wrap freshly measured knobs in a full artifact payload."""
        payload = {
            "schema": SCHEMA_VERSION,
            "host": {
                "platform": platform.platform(),
                "machine": platform.machine(),
                "python": platform.python_version(),
                "cpus": os.cpu_count() or 1,
            },
            "knobs": knobs,
        }
        if meta:
            payload["meta"] = dict(meta)
        return cls(payload)

    @property
    def knobs(self) -> dict:
        """The section → name → value mapping."""
        return self.payload["knobs"]

    def get(self, section: str, name: str) -> Any:
        """One knob's value, or ``None`` when the artifact omits it."""
        return self.payload["knobs"].get(section, {}).get(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sections = {k: sorted(v) for k, v in self.knobs.items()}
        return f"Calibration(path={self.path}, knobs={sections})"


def _validate_payload(payload: Any) -> None:
    if not isinstance(payload, dict):
        raise CalibrationError(
            f"calibration artifact must be a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise CalibrationError(
            f"calibration schema {schema!r} is not supported "
            f"(this library reads schema {SCHEMA_VERSION}); re-run `repro calibrate`"
        )
    knobs = payload.get("knobs")
    if not isinstance(knobs, dict):
        raise CalibrationError("calibration artifact is missing its 'knobs' object")
    for section, values in knobs.items():
        if section not in KNOB_SCHEMA:
            raise CalibrationError(
                f"unknown calibration section {section!r} "
                f"(expected one of {sorted(KNOB_SCHEMA)})"
            )
        if not isinstance(values, dict):
            raise CalibrationError(f"calibration section {section!r} must be an object")
        for name, value in values.items():
            validator = KNOB_SCHEMA[section].get(name)
            if validator is None:
                raise CalibrationError(
                    f"unknown calibration knob {section}.{name} "
                    f"(expected one of {sorted(KNOB_SCHEMA[section])})"
                )
            if not validator(value):
                raise CalibrationError(
                    f"calibration knob {section}.{name} has invalid value {value!r}"
                )


def save_calibration(
    calibration: Union[Calibration, dict], path: Union[str, os.PathLike]
) -> Path:
    """Atomically write a calibration artifact; returns the final path.

    The payload is validated first, then written to a temporary file in
    the destination directory and renamed into place (``os.replace``),
    so the artifact on disk is always either the previous complete
    version or the new complete version — a crashed calibrate never
    leaves a truncated file for ``REPRO_CALIBRATION`` to trip over.

    >>> import tempfile, pathlib
    >>> cal = Calibration.from_knobs({"runtime": {"workers": 2}})
    >>> with tempfile.TemporaryDirectory() as d:
    ...     out = save_calibration(cal, pathlib.Path(d) / "calibration.json")
    ...     load_calibration(out).get("runtime", "workers")
    2
    """
    if isinstance(calibration, Calibration):
        payload = calibration.payload
    else:
        _validate_payload(calibration)
        payload = calibration
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    invalidate_cache()  # a rewritten artifact must be re-read everywhere
    return path


def load_calibration(path: Union[str, os.PathLike]) -> Calibration:
    """Load and validate a calibration artifact from disk.

    Raises :class:`~repro.exceptions.CalibrationError` for unreadable
    files, non-JSON content, unsupported schema versions and malformed
    knob values — a bad artifact fails loudly at load time, never as a
    mysterious mis-dispatch later.

    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as d:
    ...     p = save_calibration(
    ...         Calibration.from_knobs({"kernels": {"cell_budget": 1000}}),
    ...         pathlib.Path(d) / "c.json")
    ...     load_calibration(p).get("kernels", "cell_budget")
    1000
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CalibrationError(f"cannot read calibration artifact {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise CalibrationError(
            f"calibration artifact {path} is not valid JSON: {exc}"
        ) from exc
    calibration = Calibration(payload, path=path)
    return calibration


#: Cache of the env-activated artifact: (path, mtime_ns, size) → Calibration.
_active_cache: dict[tuple[str, int, int], Calibration] = {}


#: Memo of fully resolved knob values, keyed by everything the answer
#: depends on (knob coordinates, raw env string, active artifact).  The
#: kernel dispatcher resolves knobs on every similarity call, so the
#: cast/validate work must not be repaid per call.
_resolved_cache: dict[tuple, Any] = {}

#: Consumer-side memos (see :func:`register_cache`), cleared together
#: with the caches above.
_consumer_caches: list[dict] = []


def register_cache(cache: dict) -> None:
    """Register a consumer-side knob memo with the invalidation hooks.

    Hot consumers (the kernel dispatcher) keep their own resolved-knob
    memo keyed on raw environment strings, cheaper to probe than the
    full precedence chain.  Registering it here makes
    :func:`invalidate_cache` (and every :func:`save_calibration`) clear
    it, so an in-process re-calibration is picked up immediately.
    """
    _consumer_caches.append(cache)


def invalidate_cache() -> None:
    """Drop the cached env-activated artifact (tests, hot re-calibration)."""
    _active_cache.clear()
    _resolved_cache.clear()
    for cache in _consumer_caches:
        cache.clear()


def active_calibration() -> Union[Calibration, None]:
    """The calibration the current process should consume, or ``None``.

    Resolution: the ``REPRO_CALIBRATION`` environment variable names the
    artifact path; unset (or empty) means *no calibration* and every
    knob falls back through its remaining precedence chain.  The loaded
    artifact is cached keyed by the file's identity (path, mtime, size),
    so the hot paths pay one ``stat`` per call, not a JSON parse — and a
    re-written artifact is picked up without restarting.

    A set-but-unusable artifact raises
    :class:`~repro.exceptions.CalibrationError`: an explicitly activated
    calibration must be valid.

    >>> import os
    >>> os.environ.pop("REPRO_CALIBRATION", None) and None
    >>> active_calibration() is None
    True
    """
    raw = os.environ.get(ENV_CALIBRATION)
    if not raw:
        return None
    path = Path(raw)
    try:
        stat = path.stat()
    except OSError as exc:
        raise CalibrationError(
            f"{ENV_CALIBRATION} points at {path}, which cannot be read: {exc}"
        ) from exc
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    cached = _active_cache.get(key)
    if cached is None:
        cached = load_calibration(path)
        _active_cache.clear()  # one active artifact at a time
        _resolved_cache.clear()  # resolved knobs may have changed
        _active_cache[key] = cached
    return cached


def resolve_knob(
    section: str,
    name: str,
    builtin: T,
    arg: Union[T, None] = None,
    env_var: Union[str, None] = None,
    cast: Callable[[str], T] = int,
    minimum: Union[T, None] = None,
) -> T:
    """Resolve one performance knob through the precedence chain.

    ``explicit arg > env var > calibration artifact > built-in`` — the
    one rule every consumer follows, so a knob can always be forced per
    call (tests), per process (env), per host (artifact) or not at all.

    Parameters
    ----------
    section, name:
        The knob's coordinates in the artifact (see :data:`KNOB_SCHEMA`).
    builtin:
        The built-in default used when nothing else resolves.
    arg:
        An explicit caller argument; ``None`` means "not given".
    env_var:
        The knob's own environment variable, consulted when set and
        non-empty.  A malformed value raises
        :class:`~repro.exceptions.CalibrationError`.
    cast:
        Parser for the env string (``int`` or ``float``).
    minimum:
        Lower bound enforced on env values.

    >>> resolve_knob("streaming", "chunk_rows", builtin=1024, arg=512)
    512
    >>> resolve_knob("streaming", "chunk_rows", builtin=1024)   # no artifact
    1024
    """
    if arg is not None:
        return arg
    raw = os.environ.get(env_var) if env_var else None
    calibration = active_calibration()
    key = (section, name, env_var, raw, calibration)
    if key in _resolved_cache:
        return _resolved_cache[key]
    if raw:
        try:
            value = cast(raw)
        except ValueError:
            raise CalibrationError(
                f"{env_var} must parse as {cast.__name__}, got {raw!r}"
            ) from None
        if minimum is not None and value < minimum:
            raise CalibrationError(
                f"{env_var} must be >= {minimum}, got {raw!r}"
            )
    elif calibration is not None and calibration.get(section, name) is not None:
        knob = calibration.get(section, name)
        value = cast(knob) if not isinstance(knob, bool) else builtin
    else:
        value = builtin
    if len(_resolved_cache) > 128:
        _resolved_cache.clear()
    _resolved_cache[key] = value
    return value
