"""``repro calibrate``: measure this host's performance surface.

The measurement half of the tuning loop.  One call to :func:`calibrate`
sweeps:

* the **kernel surface** — xor / xor-mt / gemm wall time over a grid of
  ``(n, m)`` batch shapes at the working dimensionality, verifying the
  backends agree bitwise at every point while timing them;
* the **top-k retrieval** path at representative shapes (recorded for
  the report; top-k rides the same backend dispatch);
* the **streaming chunk curve** — end-to-end streamed training time as
  a function of the chunk size;
* the **ingest crossover** — fused zero-temporary chunk reduction
  against the reference encode-then-``partial_fit`` path over chunk
  sizes (bit-identity checked at every point), from which the
  ``ingest.fused_min_rows`` dispatch threshold and fused
  ``ingest.block_rows`` are derived;
* the **worker-** and **thread-scaling** curves for the encode pool and
  the ``xor-mt`` backend;
* the **serve batching curve** — per-row cost of a coalesced
  ``predict_coalesced`` micro-batch against the single-request path,
  from which the serving tier's ``serve.batch_max`` /
  ``serve.batch_window_ms`` knobs are derived;
* the **serve process-pool curve** — the same coalesced batch through
  a :class:`~repro.serve.procpool.ProcPredictPool` per worker-process
  candidate (bit-identity checked against the inline path at every
  point), from which ``serve.proc_workers`` is derived.

From the surface it derives the dispatch thresholds by explicit
minimisation: every candidate ``(gemm_crossover, xor_mt_min_cells)``
pair is scored by the total measured time of the backends it would
pick, and the best pair wins — so the calibrated ``auto`` dispatch is
optimal over the measured grid by construction, and the report records
how far ``auto`` sits from the per-point best backend.

The derived knobs are wrapped in a
:class:`~repro.tuning.calibration.Calibration` artifact (see that
module for the schema and activation), and the full surface — every
timed point, the chosen thresholds, the xor-mt speedup on the
GEMM-losing regime — is returned as a JSON-ready report
(``BENCH_calibration.json`` at the repo root, written by the CLI).
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from ..hdc import ingest as _ingest
from ..hdc import kernels as _kernels
from ..hdc.packed import DEFAULT_CELL_BUDGET, PackedHV, packed_width
from ..serve import batching as _serve_defaults
from ..serve import procpool as _serve_procpool
from .calibration import Calibration

__all__ = ["calibrate", "default_knobs"]

#: ``(n, m)`` kernel sweep grid: the GEMM-losing strip (one side tiny),
#: the crossover neighbourhood (balanced mid sizes) and the GEMM-winning
#: corner, so the derived thresholds see all three regimes.
_SWEEP_POINTS = (
    (1, 64),
    (1, 1000),
    (4, 1000),
    (4, 2000),
    (8, 1000),
    (16, 64),
    (32, 32),
    (48, 48),
    (64, 64),
    (128, 128),
    (256, 256),
)

_FAST_SWEEP_POINTS = (
    (1, 64),
    (1, 1000),
    (4, 1000),
    (8, 1000),
    (32, 32),
    (64, 64),
    (128, 128),
)

#: Shapes timed through :func:`repro.hdc.kernels.topk_hamming`.
_TOPK_POINTS = ((8, 2000, 10), (64, 1000, 5))

#: Chunk-size candidates for the streamed-training curve.
_CHUNK_CANDIDATES = (256, 512, 1024, 2048)

#: Coalesced-batch-size candidates for the serve batching curve.
_SERVE_BATCH_CANDIDATES = (8, 16, 32, 64)
_FAST_SERVE_BATCH_CANDIDATES = (8, 16, 32)

#: Chunk row counts for the fused-vs-ref ingest crossover sweep.
_INGEST_ROW_POINTS = (8, 16, 32, 64, 256, 1024)
_FAST_INGEST_ROW_POINTS = (8, 32, 256)

#: Fused threshold-block-size candidates (``ingest.block_rows``).
_INGEST_BLOCK_CANDIDATES = (128, 256, 512, 1024)
_FAST_INGEST_BLOCK_CANDIDATES = (128, 256, 512)

#: The fixed backends the sweep times (``auto`` is timed afterwards,
#: with the derived thresholds active).
_FIXED_BACKENDS = ("xor", "xor-mt", "gemm")


def default_knobs() -> dict:
    """The built-in knob values, in calibration-artifact layout.

    What an uncalibrated process effectively runs with — and the
    fallback any knob the sweep could not improve keeps.

    >>> default_knobs()["kernels"]["gemm_crossover"]
    16.0
    """
    return {
        "kernels": {
            "gemm_crossover": _kernels.AUTO_CROSSOVER,
            "xor_mt_min_cells": _kernels.XOR_MT_MIN_CELLS,
            "xor_mt_threads": os.cpu_count() or 1,
            "cell_budget": DEFAULT_CELL_BUDGET,
        },
        "streaming": {"chunk_rows": 1024},
        "ingest": {
            "block_rows": _ingest.DEFAULT_BLOCK_ROWS,
            "fused_min_rows": _ingest.DEFAULT_FUSED_MIN_ROWS,
        },
        "runtime": {"workers": 1},
        "serve": {
            "batch_window_ms": _serve_defaults.DEFAULT_BATCH_WINDOW_MS,
            "batch_max": _serve_defaults.DEFAULT_BATCH_MAX,
            "max_queue": _serve_defaults.DEFAULT_MAX_QUEUE,
            "proc_workers": _serve_procpool.auto_proc_workers(),
        },
    }


def _time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` per-call wall time of ``fn``.

    Microsecond-scale calls are timed in batches sized to a few
    milliseconds per round — single-call timing on a shared host is
    dominated by scheduler jitter, which would swamp the crossovers
    being measured.  The warm-up call doubles as the batch sizer.
    """
    start = time.perf_counter()
    fn()
    estimate = max(time.perf_counter() - start, 1e-9)
    loops = max(1, min(512, int(0.003 / estimate)))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def _packed_batch(rng: np.random.Generator, rows: int, dim: int) -> PackedHV:
    bits = rng.integers(0, 2, (rows, dim), dtype=np.uint8)
    return PackedHV.pack(bits)


def _sweep_kernels(dim: int, points, repeats: int, seed: int) -> list[dict]:
    """Time every fixed backend at every grid point (verifying agreement)."""
    rng = np.random.default_rng(seed)
    surface = []
    for n, m in points:
        a = _packed_batch(rng, n, dim)
        b = _packed_batch(rng, m, dim)
        reference = _kernels.pairwise_hamming_counts(a, b, backend="xor")
        seconds = {}
        for backend in _FIXED_BACKENDS:
            got = _kernels.pairwise_hamming_counts(a, b, backend=backend)
            if not np.array_equal(reference, got):  # pragma: no cover
                raise AssertionError(
                    f"backend {backend!r} disagrees with the reference at "
                    f"(n={n}, m={m}, d={dim})"
                )
            seconds[backend] = _time(
                lambda pa=a, pb=b, bk=backend: _kernels.pairwise_hamming_counts(
                    pa, pb, backend=bk
                ),
                repeats,
            )
        best = min(seconds, key=seconds.get)
        surface.append(
            {
                "n": n,
                "m": m,
                "harmonic": round(n * m / (n + m), 3),
                "cells": n * m * packed_width(dim),
                "seconds": seconds,
                "best": best,
            }
        )
    return surface


def _predicted_backend(point: dict, crossover: float, min_cells: float) -> str:
    n, m = point["n"], point["m"]
    if n * m >= crossover * (n + m):
        return "gemm"
    if point["cells"] >= min_cells:
        return "xor-mt"
    return "xor"


def _derive_thresholds(surface: list[dict]) -> tuple[float, int]:
    """The ``(gemm_crossover, xor_mt_min_cells)`` pair minimising total time.

    Candidate thresholds are the measured harmonic sizes / cell counts
    (plus never/always sentinels); with both grids small, exhaustive
    scoring — sum of the seconds of the backend each pair would pick at
    each point — is exact over the measured surface.
    """
    harmonics = sorted({p["harmonic"] for p in surface})
    cells = sorted({p["cells"] for p in surface})
    crossover_candidates = harmonics + [harmonics[-1] * 2 + 1]
    cell_candidates = cells + [cells[-1] * 2 + 1]
    best_pair = None
    best_total = float("inf")
    for crossover in crossover_candidates:
        for min_cells in cell_candidates:
            total = sum(
                p["seconds"][_predicted_backend(p, crossover, min_cells)]
                for p in surface
            )
            if total < best_total - 1e-12:
                best_total = total
                best_pair = (float(crossover), int(min_cells))
    assert best_pair is not None
    return best_pair


def _time_auto(surface: list[dict], dim: int, repeats: int, seed: int,
               crossover: float, min_cells: int) -> None:
    """Re-time every point under ``auto`` with the derived thresholds.

    Annotates each surface point with ``auto_seconds``, the backend the
    calibrated dispatch picks, and the ratio to the best fixed backend —
    the acceptance check that calibrated ``auto`` is never far off the
    per-point optimum.
    """
    rng = np.random.default_rng(seed)  # same stream: same batches
    overrides = {
        "REPRO_KERNEL_CROSSOVER": repr(crossover),
        "REPRO_KERNEL_MT_CELLS": str(min_cells),
    }
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        for point in surface:
            a = _packed_batch(rng, point["n"], dim)
            b = _packed_batch(rng, point["m"], dim)
            # Interleave auto with the best fixed backend so both see the
            # same machine state — cross-pass drift on a shared host
            # would otherwise dwarf the dispatch overhead being measured.
            # Alternating rounds with a running min on both sides keep a
            # transient stall on either path from skewing the ratio.
            run_auto = lambda pa=a, pb=b: _kernels.pairwise_hamming_counts(  # noqa: E731
                pa, pb, backend="auto"
            )
            run_best = lambda pa=a, pb=b, bk=point["best"]: (  # noqa: E731
                _kernels.pairwise_hamming_counts(pa, pb, backend=bk)
            )
            auto_s = best_s = float("inf")
            for _ in range(3):
                auto_s = min(auto_s, _time(run_auto, repeats))
                best_s = min(best_s, _time(run_best, repeats))
            point["auto_seconds"] = auto_s
            point["auto_backend"] = _predicted_backend(point, crossover, min_cells)
            point["auto_over_best"] = round(auto_s / best_s, 3) if best_s else 1.0
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _sweep_threads(dim: int, repeats: int, seed: int, cpus: int) -> dict:
    """Time ``xor-mt`` at a GEMM-losing point across thread counts."""
    rng = np.random.default_rng(seed)
    n, m = 4, 2000
    a = _packed_batch(rng, n, dim)
    b = _packed_batch(rng, m, dim)
    candidates = sorted({1, 2, 4, max(1, cpus)})
    curve = {
        str(threads): _time(
            lambda t=threads: _kernels._xor_mt_counts(a.data, b.data, dim, threads=t),
            repeats,
        )
        for threads in candidates
    }
    xor_seconds = _time(
        lambda: _kernels.pairwise_hamming_counts(a, b, backend="xor"), repeats
    )
    chosen = int(min(curve, key=curve.get))
    mt4 = curve.get("4", curve[str(chosen)])
    return {
        "point": {"n": n, "m": m, "dim": dim},
        "xor_seconds": xor_seconds,
        "xor_mt_seconds": curve,
        "chosen_threads": chosen,
        # The headline criterion: xor-mt (>= 4 threads when available)
        # against the single-thread reference scan on the GEMM-losing
        # regime.
        "speedup_vs_xor_at_4_threads": round(xor_seconds / mt4, 2),
    }


def _sweep_topk(dim: int, repeats: int, seed: int) -> list[dict]:
    rng = np.random.default_rng(seed)
    results = []
    for n, m, k in _TOPK_POINTS:
        queries = _packed_batch(rng, n, dim)
        table = _packed_batch(rng, m, dim)
        results.append(
            {
                "n": n,
                "m": m,
                "k": k,
                "seconds": _time(
                    lambda q=queries, t=table, kk=k: _kernels.topk_hamming(
                        q, t, k=kk
                    ),
                    repeats,
                ),
            }
        )
    return results


def _sweep_chunks(fast: bool, repeats: int) -> dict:
    """End-to-end streamed-training time per chunk-size candidate."""
    from ..basis import CircularBasis
    from ..hdc.hypervector import random_hypervectors
    from ..learning.classifier import CentroidClassifier
    from ..runtime.batch import BatchEncoder
    from ..streaming import JigsawsStream, stream_fit_classifier

    dim = 512 if fast else 2048
    per_gesture = 40 if fast else 160
    embedding = CircularBasis(12, dim, seed=1).circular_embedding(period=2.0 * np.pi)
    keys = random_hypervectors(18, dim, seed=2)
    curve = {}
    for rows in _CHUNK_CANDIDATES:
        def run(rows=rows):
            stream = JigsawsStream(
                "suturing", seed=13, chunk_size=rows, samples_per_gesture=per_gesture
            )
            encoder = BatchEncoder(keys, embedding, tie_break="zeros")
            classifier = CentroidClassifier(dim, tie_break="zeros", seed=3)
            stream_fit_classifier(classifier, encoder, stream)

        curve[str(rows)] = _time(run, repeats)
    chosen = int(min(curve, key=curve.get))
    return {"dim": dim, "rows_per_gesture": per_gesture, "seconds": curve,
            "chosen_chunk_rows": chosen}


def _sweep_ingest(fast: bool, repeats: int) -> dict:
    """Fused-vs-ref ingest cost per chunk size, plus the fused block curve.

    Times one labelled chunk reduced into a fresh classifier through the
    reference encode-then-``partial_fit`` path against the fused
    zero-temporary path (:func:`repro.hdc.ingest.ingest_chunk` with
    ``backend="fused"``), verifying both land bit-identical prototypes
    at every point, and derives the two ``ingest.*`` knobs:

    * ``fused_min_rows`` — the smallest measured chunk size where the
      fused path wins (the ``auto`` dispatch threshold; chunks below it
      keep the reference path);
    * ``block_rows`` — the threshold-block size minimising fused time
      at the largest measured chunk.
    """
    from ..basis import CircularBasis
    from ..hdc.hypervector import random_hypervectors
    from ..hdc.ingest import ingest_chunk
    from ..learning.classifier import CentroidClassifier
    from ..runtime.batch import BatchEncoder
    from ..streaming.chunks import Chunk
    from ..streaming.train import RecordEncode

    dim = 512 if fast else 2048
    points = _FAST_INGEST_ROW_POINTS if fast else _INGEST_ROW_POINTS
    blocks = _FAST_INGEST_BLOCK_CANDIDATES if fast else _INGEST_BLOCK_CANDIDATES
    embedding = CircularBasis(12, dim, seed=1).circular_embedding(period=2.0 * np.pi)
    keys = random_hypervectors(18, dim, seed=2)
    encoder = BatchEncoder(keys, embedding, tie_break="zeros")
    encode = RecordEncode(encoder, seed=0)
    max_rows = max(points)
    features = np.random.default_rng(21).uniform(
        0.0, 2.0 * np.pi, (max_rows, 18)
    )
    labels = np.array([f"g{i % 6}" for i in range(max_rows)], dtype=object)

    def ref_run(chunk: Chunk) -> CentroidClassifier:
        classifier = CentroidClassifier(dim, tie_break="zeros", seed=3)
        classifier.partial_fit([(encode(chunk), list(chunk.targets))])
        return classifier

    def fused_run(chunk: Chunk) -> CentroidClassifier:
        classifier = CentroidClassifier(dim, tie_break="zeros", seed=3)
        if not ingest_chunk(classifier, chunk, encode, backend="fused"):
            raise AssertionError(  # pragma: no cover - cell is recognisable
                "fused ingest did not recognise the sweep cell"
            )
        return classifier

    curve = {}
    for rows in points:
        chunk = Chunk(features=features[:rows], targets=labels[:rows])
        ref_clf, fused_clf = ref_run(chunk), fused_run(chunk)
        if ref_clf.classes != fused_clf.classes or any(
            not np.array_equal(ref_clf.class_vector(c), fused_clf.class_vector(c))
            for c in ref_clf.classes
        ):  # pragma: no cover - bit-identity is property-tested
            raise AssertionError(f"fused ingest disagrees with ref at rows={rows}")
        curve[str(rows)] = {
            "ref_seconds": _time(lambda c=chunk: ref_run(c), repeats),
            "fused_seconds": _time(lambda c=chunk: fused_run(c), repeats),
        }
    winners = [
        rows
        for rows in points
        if curve[str(rows)]["fused_seconds"] <= curve[str(rows)]["ref_seconds"]
    ]
    # If fused never wins on this host, park the threshold past every
    # measured point so calibrated "auto" keeps the reference path.
    chosen_min = min(winners) if winners else 2 * max_rows

    big = Chunk(features=features, targets=labels)
    block_curve = {}
    saved = os.environ.get(_ingest._ENV_BLOCK_ROWS)
    try:
        for block in blocks:
            os.environ[_ingest._ENV_BLOCK_ROWS] = str(block)
            block_curve[str(block)] = _time(lambda: fused_run(big), repeats)
    finally:
        if saved is None:
            os.environ.pop(_ingest._ENV_BLOCK_ROWS, None)
        else:
            os.environ[_ingest._ENV_BLOCK_ROWS] = saved
    chosen_block = int(min(block_curve, key=block_curve.get))
    largest = curve[str(max_rows)]
    return {
        "dim": dim,
        "chunks": curve,
        "chosen_fused_min_rows": int(chosen_min),
        "block_seconds": block_curve,
        "chosen_block_rows": chosen_block,
        "fused_speedup_at_largest": round(
            largest["ref_seconds"] / largest["fused_seconds"], 2
        ),
    }


def _sweep_serve(fast: bool, repeats: int) -> dict:
    """Per-row cost of coalesced micro-batches vs the single-request path.

    Times :meth:`~repro.serve.engine.InferenceEngine.predict_coalesced`
    over the candidate batch sizes and ``predict_one`` as the baseline,
    then derives the serving knobs:

    * ``batch_max`` — the candidate with the lowest per-row cost (the
      point past which coalescing harder stops paying on this host);
    * ``batch_window_ms`` — a few single-request service times, clamped
      to ``[0.5, 10]`` ms: holding a batch open longer than requests
      take to answer only adds latency, never throughput.
    """
    from ..experiments.config import ClassificationConfig
    from ..experiments.serving import train_classification_pipeline
    from ..serve.engine import InferenceEngine

    dim = 512 if fast else 2048
    candidates = _FAST_SERVE_BATCH_CANDIDATES if fast else _SERVE_BATCH_CANDIDATES
    pipeline = train_classification_pipeline(
        "suturing", config=ClassificationConfig(dim=dim, seed=9)
    )
    rows = np.random.default_rng(7).uniform(
        0.0, 2.0 * np.pi, (max(candidates), pipeline.num_features)
    )
    curve = {}
    with InferenceEngine(pipeline) as engine:
        single_seconds = _time(lambda: engine.predict_one(rows[0]), repeats)
        for size in candidates:
            batch = rows[:size]
            seconds = _time(lambda b=batch: engine.predict_coalesced(b), repeats)
            curve[str(size)] = {
                "seconds": seconds,
                "per_row_seconds": seconds / size,
                "speedup_vs_singles": round(single_seconds * size / seconds, 2),
            }
    chosen_max = int(min(curve, key=lambda k: curve[k]["per_row_seconds"]))
    window_ms = min(10.0, max(0.5, round(4.0 * single_seconds * 1e3, 3)))
    return {
        "dim": dim,
        "single_seconds": single_seconds,
        "batches": curve,
        "chosen_batch_max": chosen_max,
        "chosen_window_ms": window_ms,
        "coalescing_speedup_at_chosen": curve[str(chosen_max)]["speedup_vs_singles"],
    }


def _sweep_serve_procpool(fast: bool, repeats: int, cpus: int) -> dict:
    """Coalesced-batch cost per worker-process candidate.

    Times one representative coalesced batch through the inline path
    (``proc_workers=1``) and through a
    :class:`~repro.serve.procpool.ProcPredictPool` at each candidate
    count, asserting bit-identical answers at every point, and derives
    ``serve.proc_workers`` — the candidate with the lowest batch time.
    On small hosts that is typically ``1`` (process fan-out disabled),
    which is exactly what the artifact should record there.
    """
    from ..experiments.config import ClassificationConfig
    from ..experiments.serving import train_classification_pipeline
    from ..serve.engine import InferenceEngine

    dim = 512 if fast else 2048
    rows_n = 32 if fast else 64
    pipeline = train_classification_pipeline(
        "suturing", config=ClassificationConfig(dim=dim, seed=11)
    )
    rows = np.random.default_rng(17).uniform(
        0.0, 2.0 * np.pi, (rows_n, pipeline.num_features)
    )
    candidates = sorted({1, 2, max(1, cpus)})
    curve = {}
    reference = None
    for workers in candidates:
        with InferenceEngine(pipeline, proc_workers=workers) as engine:
            answers = engine.predict_coalesced(rows)
            if reference is None:
                reference = answers
            elif answers != reference:  # pragma: no cover - exactness gate
                raise AssertionError(
                    f"proc_workers={workers} disagrees with the inline path"
                )
            curve[str(workers)] = _time(
                lambda e=engine: e.predict_coalesced(rows), repeats
            )
    chosen = int(min(curve, key=curve.get))
    return {
        "dim": dim,
        "rows": rows_n,
        "seconds": curve,
        "chosen_proc_workers": chosen,
        "speedup_vs_inline": round(curve["1"] / curve[str(chosen)], 2),
    }


def _sweep_workers(fast: bool, repeats: int, cpus: int) -> dict:
    """Whole-batch encode time per worker-count candidate."""
    from ..basis import CircularBasis
    from ..hdc.hypervector import random_hypervectors
    from ..runtime.batch import BatchEncoder
    from ..runtime.pool import WorkerPool
    from ..streaming import stream_encode

    dim = 512 if fast else 2048
    rows = 512 if fast else 2048
    embedding = CircularBasis(12, dim, seed=1).circular_embedding(period=2.0 * np.pi)
    keys = random_hypervectors(18, dim, seed=2)
    encoder = BatchEncoder(keys, embedding, tie_break="zeros", chunk_size=128)
    features = np.random.default_rng(5).uniform(0.0, 2.0 * np.pi, (rows, 18))
    candidates = sorted({1, 2, max(1, cpus)})
    curve = {}
    for workers in candidates:
        with WorkerPool(workers=workers) as pool:
            curve[str(workers)] = _time(
                lambda p=pool: stream_encode(encoder, features, seed=0, pool=p),
                repeats,
            )
    chosen = int(min(curve, key=curve.get))
    return {"dim": dim, "rows": rows, "seconds": curve, "chosen_workers": chosen}


def calibrate(
    fast: bool = False,
    dim: int = 10_000,
    seed: int = 2023,
) -> tuple[Calibration, dict]:
    """Measure this host and derive its calibration artifact.

    Runs every sweep (kernels, top-k, streaming chunks, workers,
    threads), derives the dispatch thresholds by total-time
    minimisation over the measured surface, re-times ``auto`` under
    those thresholds, and returns ``(calibration, report)`` — the
    validated artifact plus the full JSON-ready measurement report.
    ``fast`` trims the grid and repeat counts for CI smoke runs.
    """
    repeats = 2 if fast else 3
    cpus = os.cpu_count() or 1
    points = _FAST_SWEEP_POINTS if fast else _SWEEP_POINTS

    surface = _sweep_kernels(dim, points, repeats, seed)
    crossover, min_cells = _derive_thresholds(surface)
    _time_auto(surface, dim, repeats, seed, crossover, min_cells)
    threads = _sweep_threads(dim, repeats, seed + 1, cpus)
    topk = _sweep_topk(dim, repeats, seed + 2)
    chunks = _sweep_chunks(fast, repeats)
    ingest = _sweep_ingest(fast, repeats)
    workers = _sweep_workers(fast, repeats, cpus)
    serve = _sweep_serve(fast, repeats)
    procpool = _sweep_serve_procpool(fast, repeats, cpus)

    knobs = {
        "kernels": {
            "gemm_crossover": crossover,
            "xor_mt_min_cells": min_cells,
            "xor_mt_threads": threads["chosen_threads"],
            "cell_budget": DEFAULT_CELL_BUDGET,
        },
        "streaming": {"chunk_rows": chunks["chosen_chunk_rows"]},
        "ingest": {
            "block_rows": ingest["chosen_block_rows"],
            "fused_min_rows": ingest["chosen_fused_min_rows"],
        },
        "runtime": {"workers": workers["chosen_workers"]},
        "serve": {
            "batch_window_ms": serve["chosen_window_ms"],
            "batch_max": serve["chosen_batch_max"],
            "max_queue": _serve_defaults.DEFAULT_MAX_QUEUE,
            "proc_workers": procpool["chosen_proc_workers"],
        },
    }
    calibration = Calibration.from_knobs(
        knobs, meta={"mode": "fast" if fast else "full", "dim": dim, "seed": seed}
    )
    report = {
        "mode": "fast" if fast else "full",
        "dim": dim,
        "seed": seed,
        "host": calibration.payload["host"],
        "kernel_surface": surface,
        "derived": {"gemm_crossover": crossover, "xor_mt_min_cells": min_cells},
        "xor_mt_scaling": threads,
        "topk": topk,
        "streaming_chunk": chunks,
        "ingest": ingest,
        "worker_scaling": workers,
        "serve_batching": serve,
        "serve_procpool": procpool,
        "knobs": knobs,
        "auto_worst_over_best": max(p["auto_over_best"] for p in surface),
    }
    return calibration, report
