"""``repro check-deadline``: replay recorded workloads against budgets.

The enforcement half of the tuning loop.  A **workload spec** is a small
JSON file that records a target (which replay to run), a shape (how big)
and a budget (what it must cost at most):

.. code-block:: json

    {
      "schema": 1,
      "name": "serve-latency",
      "target": "serve_latency",
      "shape": {"task": "suturing", "dim": 2048, "calls": 100},
      "budget": {"p50_ms": 10.0, "p99_ms": 30.0, "fastpath_vs_batch_max": 1.10}
    }

:func:`run_workload` replays the spec against the **current
configuration** — whatever ``REPRO_CALIBRATION`` / ``REPRO_*``
environment sets — measures the budgeted metrics, and reports each
check.  A miss makes ``repro check-deadline`` exit non-zero, which is
the CI perf gate: every budget the repository promises is a recorded,
replayable file instead of a hand-rolled assertion inside a benchmark
script.

Targets:

* ``serve_latency`` — trains a serving pipeline at the spec's shape and
  measures per-call ``predict_one`` latency (p50 / p99 over all calls),
  plus the fast-path vs batch-route ratio.  Budgets: ``p50_ms``,
  ``p99_ms``, ``fastpath_vs_batch_max``.
* ``stream_rss`` — stream-trains a classifier in a **subprocess** and
  reads its peak RSS (``ru_maxrss``), so the measurement is a real
  process high-water mark, not an in-process estimate.  Budgets:
  ``peak_rss_mb``, ``peak_over_unpacked_max`` (peak as a fraction of
  the unpacked encoded split a monolithic fit would materialise).
* ``serve_concurrency`` — replays a seeded mixed-model trace through
  the micro-batching scheduler (:mod:`repro.serve.replay`) and measures
  per-request latency under concurrency.  Budgets: ``p50_ms``,
  ``p99_ms``.  The replayed transcript is additionally checked
  **bit-identically** against the sequential ``predict_one`` oracle —
  a mismatch is a structural failure and raises
  :class:`~repro.exceptions.CalibrationError` (exit non-zero in CI)
  rather than a budget miss.
* ``serve_procpool`` — the same replay with every registry engine given
  a process-backed predict tier (``proc_workers`` from the shape; the
  packed model tables live in shared memory and row ranges scan in
  worker processes).  Budgets: ``p50_ms``, ``p99_ms``; the transcript
  is held to the same bit-identical oracle contract, so the process
  fan-out changing even one answer raises
  :class:`~repro.exceptions.CalibrationError`.
* ``stream_ingest`` — stream-trains the same classifier twice, through
  the reference encode-then-``partial_fit`` path and the fused ingest
  kernel (``ingest="fused"``), interleaved best-of-``repeats``.  The
  two models must be bit-identical (a divergence raises
  :class:`~repro.exceptions.CalibrationError` — the fused tier's core
  contract, not a budget miss).  Budget: ``fused_over_ref_max``, an
  upper bound on the fused/reference wall-time ratio (``0.83`` gates a
  ≥ 1.2× fused speedup).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Union

import numpy as np

from ..exceptions import CalibrationError
from .calibration import SCHEMA_VERSION

__all__ = ["WorkloadSpec", "load_workload", "run_workload", "check_deadline"]

#: Budget keys each target understands (unknown keys are rejected —
#: a typo'd budget must fail loudly, not silently pass).
_TARGET_BUDGETS = {
    "serve_latency": ("p50_ms", "p99_ms", "fastpath_vs_batch_max"),
    "stream_rss": ("peak_rss_mb", "peak_over_unpacked_max"),
    "serve_concurrency": ("p50_ms", "p99_ms"),
    "serve_procpool": ("p50_ms", "p99_ms"),
    "stream_ingest": ("fused_over_ref_max",),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One recorded workload: target + shape + budget."""

    name: str
    target: str
    shape: dict[str, Any] = field(default_factory=dict)
    budget: dict[str, float] = field(default_factory=dict)
    path: Union[Path, None] = None

    def __post_init__(self) -> None:
        if self.target not in _TARGET_BUDGETS:
            raise CalibrationError(
                f"workload target must be one of {sorted(_TARGET_BUDGETS)}, "
                f"got {self.target!r}"
            )
        allowed = _TARGET_BUDGETS[self.target]
        if not self.budget:
            raise CalibrationError(f"workload {self.name!r} has an empty budget")
        for key, value in self.budget.items():
            if key not in allowed:
                raise CalibrationError(
                    f"unknown budget {key!r} for target {self.target!r} "
                    f"(expected one of {allowed})"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
                raise CalibrationError(
                    f"budget {key!r} must be a positive number, got {value!r}"
                )


def load_workload(path: Union[str, os.PathLike]) -> WorkloadSpec:
    """Load and validate one workload spec from JSON.

    Raises :class:`~repro.exceptions.CalibrationError` for unreadable
    files, wrong schema versions, unknown targets and malformed budgets.

    >>> import tempfile, pathlib, json
    >>> spec = {"schema": 1, "name": "s", "target": "serve_latency",
    ...         "shape": {"dim": 256}, "budget": {"p99_ms": 50.0}}
    >>> with tempfile.TemporaryDirectory() as d:
    ...     p = pathlib.Path(d) / "w.json"
    ...     _ = p.write_text(json.dumps(spec))
    ...     load_workload(p).target
    'serve_latency'
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CalibrationError(f"cannot read workload spec {path}: {exc}") from exc
    except ValueError as exc:
        raise CalibrationError(f"workload spec {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CalibrationError(f"workload spec {path} must be a JSON object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise CalibrationError(
            f"workload spec {path} has schema {payload.get('schema')!r}; "
            f"this library reads schema {SCHEMA_VERSION}"
        )
    shape = payload.get("shape", {})
    budget = payload.get("budget", {})
    if not isinstance(shape, dict) or not isinstance(budget, dict):
        raise CalibrationError(
            f"workload spec {path}: 'shape' and 'budget' must be objects"
        )
    return WorkloadSpec(
        name=str(payload.get("name", path.stem)),
        target=str(payload.get("target", "")),
        shape=shape,
        budget=budget,
        path=path,
    )


def _percentile_ms(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q) * 1e3)


def _run_serve_latency(spec: WorkloadSpec) -> dict:
    """Per-call ``predict_one`` latency of a freshly trained pipeline."""
    from ..datasets import make_jigsaws_like
    from ..experiments.config import ClassificationConfig
    from ..experiments.serving import train_classification_pipeline
    from ..serve import InferenceEngine

    shape = spec.shape
    task = shape.get("task", "suturing")
    basis = shape.get("basis", "circular")
    dim = int(shape.get("dim", 2048))
    calls = int(shape.get("calls", 100))
    repeats = int(shape.get("repeats", 3))
    pipeline = train_classification_pipeline(
        task, basis, config=ClassificationConfig(dim=dim, seed=7)
    )
    records = make_jigsaws_like(task=task, seed=99).test_features[:calls]
    with InferenceEngine(pipeline) as engine:
        for row in records[:3]:
            engine.predict_one(row)  # warm-up
        samples: list[float] = []
        for _ in range(repeats):
            for row in records:
                start = time.perf_counter()
                engine.predict_one(row)
                samples.append(time.perf_counter() - start)
        batch_start = time.perf_counter()
        for row in records:
            engine.predict(np.asarray(row)[None, :])
        batch_per_call = (time.perf_counter() - batch_start) / len(records)
    fast_mean = sum(samples) / len(samples)
    return {
        "calls": len(samples),
        "p50_ms": round(_percentile_ms(samples, 50), 3),
        "p99_ms": round(_percentile_ms(samples, 99), 3),
        "mean_ms": round(fast_mean * 1e3, 3),
        "batch_route_ms": round(batch_per_call * 1e3, 3),
        "fastpath_vs_batch": round(fast_mean / batch_per_call, 3),
    }


#: Subprocess body for the ``stream_rss`` target: stream-train at the
#: given shape and print peak RSS as JSON.  Runs with this interpreter
#: and the caller's environment (so ``REPRO_CALIBRATION`` applies).
_RSS_WORKER = """
import json, resource, sys
import numpy as np
from repro.basis import CircularBasis
from repro.hdc.hypervector import random_hypervectors
from repro.learning import CentroidClassifier
from repro.runtime import BatchEncoder
from repro.streaming import JigsawsStream, stream_fit_classifier

dim, rows, chunk_rows = (int(a) for a in sys.argv[1:4])
stream = JigsawsStream("suturing", seed=13, chunk_size=chunk_rows,
                       samples_per_gesture=max(1, rows // 15))
embedding = CircularBasis(12, dim, seed=1).circular_embedding(period=2.0 * np.pi)
keys = random_hypervectors(18, dim, seed=2)
encoder = BatchEncoder(keys, embedding, tie_break="zeros", chunk_size=chunk_rows)
classifier = CentroidClassifier(dim, tie_break="zeros", seed=3)
stats = stream_fit_classifier(classifier, encoder, stream)
peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"rows": stats.rows, "chunks": stats.chunks,
                  "peak_rss_bytes": peak_kib * 1024}))
"""


def _run_stream_rss(spec: WorkloadSpec) -> dict:
    """Peak RSS of a streamed training run, measured in a subprocess."""
    shape = spec.shape
    dim = int(shape.get("dim", 2048))
    rows = int(shape.get("rows", 20_000))
    chunk_rows = int(shape.get("chunk_rows", 256))
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, "-c", _RSS_WORKER, str(dim), str(rows), str(chunk_rows)],
        capture_output=True,
        text=True,
        env=env,
        timeout=1200,
        check=True,
    )
    worker = json.loads(result.stdout.strip().splitlines()[-1])
    unpacked_bytes = worker["rows"] * dim  # 1 byte/bit encoded split
    return {
        "rows": worker["rows"],
        "chunks": worker["chunks"],
        "chunk_rows": chunk_rows,
        "peak_rss_mb": round(worker["peak_rss_bytes"] / 1e6, 1),
        "would_be_unpacked_mb": round(unpacked_bytes / 1e6, 1),
        "peak_over_unpacked": round(worker["peak_rss_bytes"] / unpacked_bytes, 3),
    }


def _run_serve_concurrency(spec: WorkloadSpec) -> dict:
    """Latency of a replayed concurrent trace through the micro-batcher.

    Trains a classification and a regression pipeline at the spec's
    shape, generates a seeded Poisson-arrival mixed trace, replays it
    concurrently through per-model
    :class:`~repro.serve.batching.MicroBatcher` schedulers, and — before
    any budget check — asserts the full transcript equals the sequential
    ``predict_one`` oracle bit for bit.  Coalescing that changes even a
    single answer is a broken build, not a slow one, so the mismatch
    raises :class:`~repro.exceptions.CalibrationError` directly.
    """
    import asyncio
    import math

    from ..experiments.config import ClassificationConfig, RegressionConfig
    from ..experiments.serving import (
        train_classification_pipeline,
        train_regression_pipeline,
    )
    from ..serve import (
        InferenceEngine,
        MicroBatcher,
        generate_trace,
        oracle_transcript,
        replay_async,
    )
    from ..serve.registry import ModelRegistry

    shape = spec.shape
    dim = int(shape.get("dim", 1024))
    requests = int(shape.get("requests", 128))
    rate_hz = float(shape.get("rate_hz", 2000.0))
    speedup = float(shape.get("speedup", 1.0))
    seed = int(shape.get("seed", 17))
    # The serve_procpool target reuses this runner with a worker-process
    # count; plain serve_concurrency specs leave it at the knob chain.
    proc_workers = shape.get("proc_workers")
    proc_workers = None if proc_workers is None else int(proc_workers)
    two_pi = 2.0 * math.pi

    cls_pipe = train_classification_pipeline(
        shape.get("task", "suturing"), config=ClassificationConfig(dim=dim, seed=7)
    )
    reg_pipe = train_regression_pipeline(config=RegressionConfig(dim=dim, seed=3))
    trace = generate_trace(
        {
            "gesture": (cls_pipe.num_features, (0.0, two_pi)),
            "mars_express": (reg_pipe.num_features, (0.0, two_pi)),
        },
        requests,
        seed=seed,
        rate_hz=rate_hz,
    )
    with InferenceEngine(cls_pipe) as e1, InferenceEngine(reg_pipe) as e2:
        oracle = oracle_transcript(trace, {"gesture": e1, "mars_express": e2})

    async def run():
        with ModelRegistry(proc_workers=proc_workers) as registry:
            registry.register("gesture", cls_pipe)
            registry.register("mars_express", reg_pipe)
            batchers = {
                name: MicroBatcher(registry, name) for name in registry.names()
            }
            for batcher in batchers.values():
                await batcher.start()
            try:
                report = await replay_async(
                    trace,
                    lambda model, features: batchers[model].submit(features),
                    speedup=speedup,
                )
            finally:
                for batcher in batchers.values():
                    await batcher.stop()
            return report, {n: dict(b.stats) for n, b in batchers.items()}

    report, stats = asyncio.run(run())
    if report.errors:
        raise CalibrationError(
            f"serve_concurrency replay failed {len(report.errors)} request(s): "
            f"{sorted(report.errors.items())[:3]}"
        )
    if report.responses != oracle:
        bad = sum(1 for a, b in zip(report.responses, oracle) if a != b)
        raise CalibrationError(
            f"serve_concurrency transcript is NOT bit-identical to the "
            f"sequential predict_one oracle ({bad}/{len(oracle)} responses "
            "differ) — the micro-batcher broke the bit-identity contract"
        )
    return {
        "requests": report.count,
        "p50_ms": round(report.p50_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
        "throughput_rps": round(report.throughput_rps, 1),
        "max_batch_seen": max(s["max_batch_seen"] for s in stats.values()),
        "batches": sum(s["batches"] for s in stats.values()),
        "oracle_match": True,
    }


def _run_serve_procpool(spec: WorkloadSpec) -> dict:
    """Concurrency replay with the process-backed predict tier active.

    Delegates to the ``serve_concurrency`` runner with the shape's
    ``proc_workers`` (default 2) forced on, so every engine the
    registry builds publishes its packed tables into a shared-memory
    segment and shards coalesced batches across worker processes.  The
    oracle comparison inside the shared runner is this target's core
    assertion: process fan-out must not change a single answer.
    """
    shape = dict(spec.shape)
    shape.setdefault("proc_workers", 2)
    forced = WorkloadSpec(
        name=spec.name,
        target="serve_concurrency",
        shape=shape,
        budget=spec.budget,
        path=spec.path,
    )
    measured = _run_serve_concurrency(forced)
    measured["proc_workers"] = int(shape["proc_workers"])
    return measured


def _run_stream_ingest(spec: WorkloadSpec) -> dict:
    """Fused-vs-reference streamed training time at the spec's shape.

    Streams the same synthetic gesture workload into two fresh
    classifiers — ``ingest="ref"`` (encode then ``partial_fit``) and
    ``ingest="fused"`` (zero-temporary count accumulation) — with the
    passes interleaved best-of-``repeats`` so both see the same machine
    state.  Before any budget check the two models are compared class
    by class: the fused tier promises bit-identical training, so a
    divergence raises :class:`~repro.exceptions.CalibrationError`
    rather than counting as a slow run.
    """
    from ..basis import CircularBasis
    from ..hdc.hypervector import random_hypervectors
    from ..learning import CentroidClassifier
    from ..runtime import BatchEncoder
    from ..streaming import JigsawsStream, stream_fit_classifier

    shape = spec.shape
    dim = int(shape.get("dim", 2048))
    rows = int(shape.get("rows", 20_000))
    chunk_rows = int(shape.get("chunk_rows", 1024))
    repeats = int(shape.get("repeats", 3))

    embedding = CircularBasis(12, dim, seed=1).circular_embedding(period=2.0 * np.pi)
    keys = random_hypervectors(18, dim, seed=2)

    def run(ingest: str) -> tuple[float, "CentroidClassifier", int]:
        stream = JigsawsStream(
            "suturing", seed=13, chunk_size=chunk_rows,
            samples_per_gesture=max(1, rows // 15),
        )
        encoder = BatchEncoder(keys, embedding, tie_break="zeros",
                               chunk_size=chunk_rows)
        classifier = CentroidClassifier(dim, tie_break="zeros", seed=3)
        start = time.perf_counter()
        stats = stream_fit_classifier(classifier, encoder, stream, ingest=ingest)
        return time.perf_counter() - start, classifier, stats.rows

    ref_s = fused_s = float("inf")
    streamed_rows = 0
    ref_model = fused_model = None
    for _ in range(max(1, repeats)):
        seconds, ref_model, streamed_rows = run("ref")
        ref_s = min(ref_s, seconds)
        seconds, fused_model, _ = run("fused")
        fused_s = min(fused_s, seconds)
    assert ref_model is not None and fused_model is not None
    if ref_model.classes != fused_model.classes or any(
        not np.array_equal(ref_model.class_vector(c), fused_model.class_vector(c))
        for c in ref_model.classes
    ):
        raise CalibrationError(
            "stream_ingest: the fused ingest kernel trained a model that is "
            "NOT bit-identical to the reference path — the fused tier broke "
            "its exactness contract"
        )
    return {
        "rows": streamed_rows,
        "chunk_rows": chunk_rows,
        "dim": dim,
        "ref_seconds": round(ref_s, 4),
        "fused_seconds": round(fused_s, 4),
        "ref_rows_per_s": round(streamed_rows / ref_s, 1),
        "fused_rows_per_s": round(streamed_rows / fused_s, 1),
        "fused_over_ref": round(fused_s / ref_s, 3),
        "bit_identical": True,
    }


#: Which measured metric each budget key gates on (and that lower is
#: better for all of them — every budget is an upper bound).
_BUDGET_METRICS = {
    "p50_ms": "p50_ms",
    "p99_ms": "p99_ms",
    "fastpath_vs_batch_max": "fastpath_vs_batch",
    "peak_rss_mb": "peak_rss_mb",
    "peak_over_unpacked_max": "peak_over_unpacked",
    "fused_over_ref_max": "fused_over_ref",
}


def run_workload(spec: WorkloadSpec) -> dict:
    """Replay one workload and check every budget entry.

    Returns a JSON-ready result: the measured metrics, one check per
    budget entry (``measured <= budget``), and the overall ``ok``.
    The replay runs under the **current** configuration — point
    ``REPRO_CALIBRATION`` at an artifact first to gate the calibrated
    setup (subprocess targets inherit the environment).
    """
    runners = {
        "serve_latency": _run_serve_latency,
        "stream_rss": _run_stream_rss,
        "serve_concurrency": _run_serve_concurrency,
        "serve_procpool": _run_serve_procpool,
        "stream_ingest": _run_stream_ingest,
    }
    measured = runners[spec.target](spec)
    checks = []
    for key, budget in spec.budget.items():
        value = measured[_BUDGET_METRICS[key]]
        checks.append(
            {
                "budget": key,
                "limit": budget,
                "measured": value,
                "ok": bool(value <= budget),
            }
        )
    return {
        "name": spec.name,
        "target": spec.target,
        "shape": dict(spec.shape),
        "measured": measured,
        "checks": checks,
        "ok": all(c["ok"] for c in checks),
    }


def check_deadline(paths: list) -> tuple[int, list[dict]]:
    """Replay every spec; return ``(exit_code, results)``.

    Exit code 0 when every budget of every workload holds, 1 otherwise —
    what the ``repro check-deadline`` CLI (and therefore CI) returns.
    """
    results = [run_workload(load_workload(path)) for path in paths]
    return (0 if all(r["ok"] for r in results) else 1), results
