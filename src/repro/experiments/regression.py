"""The Table 2 / Figure 7 experiments: Beijing and Mars Express regression.

Beijing (Section 6.2): samples are encoded as ``Y ⊗ D ⊗ H`` — the year as
a level-hypervector (macro trends), the day-of-year and hour-of-day drawn
from the basis under test (random / level / circular).  The label
(temperature) is encoded with level-hypervectors; the model memorises
``⊕ φ(x) ⊗ φ_ℓ(y)``; decoding follows Section 2.3.

Mars Express: a single circular feature, the orbital mean anomaly,
encoded with the basis under test; the label (power) level-encoded.

Both report mean squared error on the held-out split; Figure 7 is the
same data normalized by the random-basis column.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Mapping

import numpy as np

from .._rng import ensure_rng
from ..basis import (
    CircularDiscretizer,
    Embedding,
    LevelBasis,
    LinearDiscretizer,
    make_basis,
)
from ..datasets import RegressionSplit, make_beijing_like, make_mars_express_like
from ..datasets.beijing import DAYS_PER_YEAR
from ..exceptions import InvalidParameterError
from ..hdc.encoders import encode_bound_records
from ..learning.metrics import mean_squared_error
from ..learning.regression import HDRegressor
from ..runtime import (
    ArtifactStore,
    WorkerPool,
    fit_regressor_sharded,
    predict_regressor_sharded,
)
from .config import RegressionConfig

__all__ = [
    "REGRESSION_DATASETS",
    "RegressionResult",
    "run_beijing",
    "run_mars_express",
    "make_regression_split",
    "run_regression",
    "run_table2",
    "table2_cache_params",
]

#: The datasets of Table 2, in row order.
REGRESSION_DATASETS = ("beijing", "mars_express")

TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class RegressionResult:
    """Outcome of one (dataset, basis) regression run."""

    dataset: str
    basis_kind: str
    mse: float
    num_train: int
    num_test: int
    config: RegressionConfig


def _feature_embedding(
    basis_kind: str,
    levels: int,
    period: float,
    config: RegressionConfig,
    seed,
) -> Embedding:
    """Embedding for a periodic feature under the basis set on test.

    Circular bases pair with a circular grid over the feature's period;
    random/level bases pair with the paper's linear ξ-grid over one
    period — the baseline treatment of a circular quantity.
    """
    r = config.circular_r if basis_kind == "circular" else 0.0
    basis = make_basis(basis_kind, levels, config.dim, r=r, seed=seed)
    if basis_kind == "circular":
        discretizer = CircularDiscretizer(levels, low=0.0, period=period)
    else:
        discretizer = LinearDiscretizer(0.0, period, levels, clip=True)
    return Embedding(basis, discretizer)


def _label_embedding(split: RegressionSplit, config: RegressionConfig, seed) -> Embedding:
    low, high = split.label_range
    if high <= low:  # degenerate label range (constant labels)
        high = low + 1.0
    basis = LevelBasis(config.label_levels, config.dim, seed=seed)
    return Embedding(basis, LinearDiscretizer(low, high, config.label_levels, clip=True))


def _fit_and_score(
    model: HDRegressor,
    train_hvs,
    train_labels: np.ndarray,
    test_hvs,
    test_labels: np.ndarray,
    pool: WorkerPool | None,
) -> float:
    """Train and score one regression cell, sharding over ``pool`` if given.

    The sharded path folds integer bundle shards in sample order and
    concatenates prediction chunks in chunk order, so the MSE is
    bit-identical to the serial path.
    """
    if pool is None or pool.serial:
        model.fit(train_hvs, train_labels)
        return model.score(test_hvs, test_labels)
    fit_regressor_sharded(model, train_hvs, train_labels, pool)
    predictions = predict_regressor_sharded(model, test_hvs, pool)
    return mean_squared_error(np.asarray(test_labels, dtype=np.float64), predictions)


def run_beijing(
    basis_kind: str,
    config: RegressionConfig | None = None,
    split: RegressionSplit | None = None,
    pool: WorkerPool | None = None,
) -> RegressionResult:
    """One Beijing cell of Table 2: temperature-forecast MSE.

    ``pool`` optionally shards this cell's training and prediction over
    a :class:`~repro.runtime.pool.WorkerPool`; the MSE is bit-identical
    to the serial run.
    """
    config = config or RegressionConfig()
    master = ensure_rng(config.seed)
    data_rng, year_rng, day_rng, hour_rng, label_rng, tie_rng = master.spawn(6)

    if split is None:
        split = make_beijing_like(seed=data_rng)

    # Year: always a level basis over the observed year indices.
    year_values = np.concatenate(
        [split.train_features[:, 0], split.test_features[:, 0]]
    )
    num_years = int(year_values.max()) + 1
    year_levels = max(2, num_years)
    year_basis = LevelBasis(year_levels, config.dim, seed=year_rng)
    year_embedding = Embedding(
        year_basis,
        LinearDiscretizer(0.0, float(year_levels - 1), year_levels, clip=True),
    )

    day_embedding = _feature_embedding(
        basis_kind, config.day_levels, DAYS_PER_YEAR, config, day_rng
    )
    hour_embedding = _feature_embedding(
        basis_kind, config.hour_levels, 24.0, config, hour_rng
    )
    label_embedding = _label_embedding(split, config, label_rng)

    def encode(features: np.ndarray):
        # Packed feature batches: the Y ⊗ D ⊗ H binding runs on packed
        # words and the encoded corpus stays at ceil(d / 8) bytes a row.
        return encode_bound_records(
            [
                year_embedding.encode_packed(features[:, 0]),
                day_embedding.encode_packed(features[:, 1]),
                hour_embedding.encode_packed(features[:, 2]),
            ]
        )

    model = HDRegressor(
        label_embedding, seed=tie_rng, decode=config.decode, model=config.model
    )
    mse = _fit_and_score(
        model,
        encode(split.train_features),
        split.train_labels,
        encode(split.test_features),
        split.test_labels,
        pool,
    )
    return RegressionResult(
        dataset="beijing",
        basis_kind=basis_kind,
        mse=mse,
        num_train=int(split.train_features.shape[0]),
        num_test=int(split.test_features.shape[0]),
        config=config,
    )


def run_mars_express(
    basis_kind: str,
    config: RegressionConfig | None = None,
    split: RegressionSplit | None = None,
    pool: WorkerPool | None = None,
) -> RegressionResult:
    """One Mars Express cell of Table 2: power-prediction MSE.

    ``pool`` optionally shards this cell's training and prediction over
    a :class:`~repro.runtime.pool.WorkerPool`; the MSE is bit-identical
    to the serial run.
    """
    config = config or RegressionConfig()
    master = ensure_rng(config.seed)
    data_rng, anomaly_rng, label_rng, tie_rng = master.spawn(4)

    if split is None:
        split = make_mars_express_like(seed=data_rng)

    anomaly_embedding = _feature_embedding(
        basis_kind, config.anomaly_levels, TWO_PI, config, anomaly_rng
    )
    label_embedding = _label_embedding(split, config, label_rng)

    model = HDRegressor(
        label_embedding, seed=tie_rng, decode=config.decode, model=config.model
    )
    mse = _fit_and_score(
        model,
        anomaly_embedding.encode_packed(split.train_features[:, 0]),
        split.train_labels,
        anomaly_embedding.encode_packed(split.test_features[:, 0]),
        split.test_labels,
        pool,
    )
    return RegressionResult(
        dataset="mars_express",
        basis_kind=basis_kind,
        mse=mse,
        num_train=int(split.train_features.shape[0]),
        num_test=int(split.test_features.shape[0]),
        config=config,
    )


def run_regression(
    dataset: str,
    basis_kind: str,
    config: RegressionConfig | None = None,
    split: RegressionSplit | None = None,
    pool: WorkerPool | None = None,
) -> RegressionResult:
    """Dispatch to :func:`run_beijing` / :func:`run_mars_express` by name.

    Example
    -------
    >>> cfg = RegressionConfig(dim=256, seed=7)
    >>> cell = run_regression("mars_express", "circular", config=cfg)
    >>> cell.dataset, cell.basis_kind
    ('mars_express', 'circular')
    >>> cell.mse >= 0.0
    True
    """
    if dataset == "beijing":
        return run_beijing(basis_kind, config=config, split=split, pool=pool)
    if dataset == "mars_express":
        return run_mars_express(basis_kind, config=config, split=split, pool=pool)
    raise InvalidParameterError(
        f"unknown dataset {dataset!r}; expected one of {REGRESSION_DATASETS}"
    )


def make_regression_split(dataset: str, config: RegressionConfig) -> RegressionSplit:
    """Generate one dataset exactly as the table/sweep drivers do.

    Centralised so the parallel drivers and the serial cell runners
    derive the identical split from ``config.seed``.
    """
    data_rng = ensure_rng(config.seed).spawn(6)[0]
    if dataset == "beijing":
        return make_beijing_like(seed=data_rng)
    if dataset == "mars_express":
        return make_mars_express_like(seed=data_rng)
    raise InvalidParameterError(
        f"unknown dataset {dataset!r}; expected one of {REGRESSION_DATASETS}"
    )


def _table2_cell(
    dataset: str, kind: str, config: RegressionConfig, split: RegressionSplit
) -> float:
    """One (dataset, basis) cell — module-level so process pools can pickle it."""
    return run_regression(dataset, kind, config=config, split=split).mse


def table2_cache_params(
    config: RegressionConfig,
    basis_kinds: tuple[str, ...],
    datasets: tuple[str, ...],
) -> dict:
    """The content-hash key identifying one Table 2 configuration."""
    return {
        "config": asdict(config),
        "basis_kinds": list(basis_kinds),
        "datasets": list(datasets),
    }


def run_table2(
    config: RegressionConfig | None = None,
    basis_kinds: tuple[str, ...] = ("random", "level", "circular"),
    datasets: tuple[str, ...] = REGRESSION_DATASETS,
    workers: int = 1,
    backend: str = "thread",
    store: ArtifactStore | None = None,
) -> Mapping[str, Mapping[str, float]]:
    """Regenerate Table 2: MSE per (dataset, basis kind).

    One dataset instance is shared across the basis kinds of a row, so the
    encoding is the only varying factor.  Figure 7 is obtained by
    normalizing each row by its ``"random"`` entry
    (:func:`repro.learning.metrics.normalized_mse`).

    Parameters
    ----------
    workers, backend:
        Fan the independent (dataset, basis) cells out over a
        :class:`~repro.runtime.pool.WorkerPool`; results are
        bit-identical to the serial run for any worker count.
    store:
        Optional :class:`~repro.runtime.artifacts.ArtifactStore` serving
        repeated identical configurations from the cache.
    """
    config = config or RegressionConfig()
    params = table2_cache_params(config, tuple(basis_kinds), tuple(datasets))
    if store is not None:
        cached = store.load("table2", params)
        if cached is not None:
            return cached

    splits = {dataset: make_regression_split(dataset, config) for dataset in datasets}
    cells = [
        (dataset, kind, config, splits[dataset])
        for dataset in datasets
        for kind in basis_kinds
    ]
    with WorkerPool(workers=workers, backend=backend) as pool:
        errors = pool.starmap(_table2_cell, cells)

    results: dict[str, dict[str, float]] = {dataset: {} for dataset in datasets}
    for (dataset, kind, _, _), mse in zip(cells, errors):
        results[dataset][kind] = mse
    if store is not None:
        store.store("table2", params, results)
    return results
