"""The Table 2 / Figure 7 experiments: Beijing and Mars Express regression.

Beijing (Section 6.2): samples are encoded as ``Y ⊗ D ⊗ H`` — the year as
a level-hypervector (macro trends), the day-of-year and hour-of-day drawn
from the basis under test (random / level / circular).  The label
(temperature) is encoded with level-hypervectors; the model memorises
``⊕ φ(x) ⊗ φ_ℓ(y)``; decoding follows Section 2.3.

Mars Express: a single circular feature, the orbital mean anomaly,
encoded with the basis under test; the label (power) level-encoded.

Both report mean squared error on the held-out split; Figure 7 is the
same data normalized by the random-basis column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .._rng import ensure_rng
from ..basis import (
    CircularDiscretizer,
    Embedding,
    LevelBasis,
    LinearDiscretizer,
    make_basis,
)
from ..datasets import RegressionSplit, make_beijing_like, make_mars_express_like
from ..datasets.beijing import DAYS_PER_YEAR
from ..exceptions import InvalidParameterError
from ..hdc.encoders import encode_bound_records
from ..learning.regression import HDRegressor
from .config import RegressionConfig

__all__ = [
    "REGRESSION_DATASETS",
    "RegressionResult",
    "run_beijing",
    "run_mars_express",
    "run_regression",
    "run_table2",
]

#: The datasets of Table 2, in row order.
REGRESSION_DATASETS = ("beijing", "mars_express")

TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class RegressionResult:
    """Outcome of one (dataset, basis) regression run."""

    dataset: str
    basis_kind: str
    mse: float
    num_train: int
    num_test: int
    config: RegressionConfig


def _feature_embedding(
    basis_kind: str,
    levels: int,
    period: float,
    config: RegressionConfig,
    seed,
) -> Embedding:
    """Embedding for a periodic feature under the basis set on test.

    Circular bases pair with a circular grid over the feature's period;
    random/level bases pair with the paper's linear ξ-grid over one
    period — the baseline treatment of a circular quantity.
    """
    r = config.circular_r if basis_kind == "circular" else 0.0
    basis = make_basis(basis_kind, levels, config.dim, r=r, seed=seed)
    if basis_kind == "circular":
        discretizer = CircularDiscretizer(levels, low=0.0, period=period)
    else:
        discretizer = LinearDiscretizer(0.0, period, levels, clip=True)
    return Embedding(basis, discretizer)


def _label_embedding(split: RegressionSplit, config: RegressionConfig, seed) -> Embedding:
    low, high = split.label_range
    if high <= low:  # degenerate label range (constant labels)
        high = low + 1.0
    basis = LevelBasis(config.label_levels, config.dim, seed=seed)
    return Embedding(basis, LinearDiscretizer(low, high, config.label_levels, clip=True))


def run_beijing(
    basis_kind: str,
    config: RegressionConfig | None = None,
    split: RegressionSplit | None = None,
) -> RegressionResult:
    """One Beijing cell of Table 2: temperature-forecast MSE."""
    config = config or RegressionConfig()
    master = ensure_rng(config.seed)
    data_rng, year_rng, day_rng, hour_rng, label_rng, tie_rng = master.spawn(6)

    if split is None:
        split = make_beijing_like(seed=data_rng)

    # Year: always a level basis over the observed year indices.
    year_values = np.concatenate(
        [split.train_features[:, 0], split.test_features[:, 0]]
    )
    num_years = int(year_values.max()) + 1
    year_levels = max(2, num_years)
    year_basis = LevelBasis(year_levels, config.dim, seed=year_rng)
    year_embedding = Embedding(
        year_basis,
        LinearDiscretizer(0.0, float(year_levels - 1), year_levels, clip=True),
    )

    day_embedding = _feature_embedding(
        basis_kind, config.day_levels, DAYS_PER_YEAR, config, day_rng
    )
    hour_embedding = _feature_embedding(
        basis_kind, config.hour_levels, 24.0, config, hour_rng
    )
    label_embedding = _label_embedding(split, config, label_rng)

    def encode(features: np.ndarray) -> np.ndarray:
        return encode_bound_records(
            [
                year_embedding.encode(features[:, 0]),
                day_embedding.encode(features[:, 1]),
                hour_embedding.encode(features[:, 2]),
            ]
        )

    model = HDRegressor(
        label_embedding, seed=tie_rng, decode=config.decode, model=config.model
    )
    model.fit(encode(split.train_features), split.train_labels)
    mse = model.score(encode(split.test_features), split.test_labels)
    return RegressionResult(
        dataset="beijing",
        basis_kind=basis_kind,
        mse=mse,
        num_train=int(split.train_features.shape[0]),
        num_test=int(split.test_features.shape[0]),
        config=config,
    )


def run_mars_express(
    basis_kind: str,
    config: RegressionConfig | None = None,
    split: RegressionSplit | None = None,
) -> RegressionResult:
    """One Mars Express cell of Table 2: power-prediction MSE."""
    config = config or RegressionConfig()
    master = ensure_rng(config.seed)
    data_rng, anomaly_rng, label_rng, tie_rng = master.spawn(4)

    if split is None:
        split = make_mars_express_like(seed=data_rng)

    anomaly_embedding = _feature_embedding(
        basis_kind, config.anomaly_levels, TWO_PI, config, anomaly_rng
    )
    label_embedding = _label_embedding(split, config, label_rng)

    model = HDRegressor(
        label_embedding, seed=tie_rng, decode=config.decode, model=config.model
    )
    model.fit(anomaly_embedding.encode(split.train_features[:, 0]), split.train_labels)
    mse = model.score(
        anomaly_embedding.encode(split.test_features[:, 0]), split.test_labels
    )
    return RegressionResult(
        dataset="mars_express",
        basis_kind=basis_kind,
        mse=mse,
        num_train=int(split.train_features.shape[0]),
        num_test=int(split.test_features.shape[0]),
        config=config,
    )


def run_regression(
    dataset: str,
    basis_kind: str,
    config: RegressionConfig | None = None,
    split: RegressionSplit | None = None,
) -> RegressionResult:
    """Dispatch to :func:`run_beijing` / :func:`run_mars_express` by name."""
    if dataset == "beijing":
        return run_beijing(basis_kind, config=config, split=split)
    if dataset == "mars_express":
        return run_mars_express(basis_kind, config=config, split=split)
    raise InvalidParameterError(
        f"unknown dataset {dataset!r}; expected one of {REGRESSION_DATASETS}"
    )


def run_table2(
    config: RegressionConfig | None = None,
    basis_kinds: tuple[str, ...] = ("random", "level", "circular"),
    datasets: tuple[str, ...] = REGRESSION_DATASETS,
) -> Mapping[str, Mapping[str, float]]:
    """Regenerate Table 2: MSE per (dataset, basis kind).

    One dataset instance is shared across the basis kinds of a row, so the
    encoding is the only varying factor.  Figure 7 is obtained by
    normalizing each row by its ``"random"`` entry
    (:func:`repro.learning.metrics.normalized_mse`).
    """
    config = config or RegressionConfig()
    results: dict[str, dict[str, float]] = {}
    for dataset in datasets:
        data_rng = ensure_rng(config.seed).spawn(6)[0]
        if dataset == "beijing":
            split = make_beijing_like(seed=data_rng)
        else:
            split = make_mars_express_like(seed=data_rng)
        results[dataset] = {}
        for kind in basis_kinds:
            outcome = run_regression(dataset, kind, config=config, split=split)
            results[dataset][kind] = outcome.mse
    return results
