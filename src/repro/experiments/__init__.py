"""Experiment drivers: one entry point per table/figure of the paper.

* :func:`~repro.experiments.classification.run_table1` — Table 1,
* :func:`~repro.experiments.regression.run_table2` — Table 2 (Figure 7 is
  the same data normalized),
* :func:`~repro.experiments.rsweep.run_rsweep` — Figure 8,
* :mod:`repro.analysis.similarity` — Figures 3 and 6 data.

Run from the command line with ``python -m repro.experiments <target>``.

Every table/sweep driver accepts ``workers=`` (independent cells fanned
out over a :class:`~repro.runtime.pool.WorkerPool`, bit-identical to the
serial run) and ``store=`` (an
:class:`~repro.runtime.artifacts.ArtifactStore` serving repeated
identical configurations from a content-addressed cache); the CLI maps
these to ``--workers`` and ``--no-cache``/``--cache-dir``.
"""

from .classification import (
    BASIS_KINDS,
    ClassificationResult,
    encode_angular_records,
    run_classification,
    run_table1,
    table1_cache_params,
)
from .config import DEFAULT_DIMENSION, ClassificationConfig, RegressionConfig
from .regression import (
    REGRESSION_DATASETS,
    RegressionResult,
    make_regression_split,
    run_beijing,
    run_mars_express,
    run_regression,
    run_table2,
    table2_cache_params,
)
from .rsweep import SWEEP_DATASETS, RSweepResult, run_rsweep, rsweep_cache_params

__all__ = [
    "BASIS_KINDS",
    "REGRESSION_DATASETS",
    "SWEEP_DATASETS",
    "DEFAULT_DIMENSION",
    "ClassificationConfig",
    "RegressionConfig",
    "ClassificationResult",
    "RegressionResult",
    "RSweepResult",
    "encode_angular_records",
    "run_classification",
    "run_table1",
    "run_beijing",
    "run_mars_express",
    "run_regression",
    "run_table2",
    "run_rsweep",
    "make_regression_split",
    "table1_cache_params",
    "table2_cache_params",
    "rsweep_cache_params",
]
