"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments table1 [--dim D] [--seed S] [--workers N]
    python -m repro.experiments table2 [--dim D] [--seed S] [--workers N]
    python -m repro.experiments figure3 [--size M] [--dim D]
    python -m repro.experiments figure6 [--dim D]
    python -m repro.experiments figure7 [--dim D] [--workers N]
    python -m repro.experiments figure8 [--dim D] [--workers N] [--fast]
    python -m repro.experiments train --out model.npz [--task T] [--basis B]
    python -m repro.experiments train --out model.npz --stream \\
        [--stream-samples N] [--chunk-size C] [--checkpoint CKPT.npz] \\
        [--cluster-workers N] [--resume] \\
        [--input DATA.jsonl|DATA.csv|DATA.npy] \\
        [--ingest-kernel auto|ref|fused|numba]
    python -m repro.experiments serve --model model.npz [--input -]
    python -m repro.experiments serve --model model.npz --stream \\
        [--checkpoint CKPT.npz] [--checkpoint-every N]
    python -m repro.experiments serve-http --model NAME=model.npz \\
        [--model NAME2=other.npz ...] [--host H] [--port P] \\
        [--batch-window-ms W] [--batch-max B] [--max-queue Q] \\
        [--proc-workers N]
    python -m repro.experiments calibrate [--fast] [--out CALIBRATION.json] \\
        [--report REPORT.json]
    python -m repro.experiments check-deadline --workload SPEC.json \\
        [--workload SPEC2.json ...]

``train`` runs one paper pipeline (a JIGSAWS-like gesture task or the
Mars Express regression) and writes the trained model as a portable
``.npz`` artifact; with ``--stream`` the training set is generated and
consumed as an out-of-core chunk stream (:mod:`repro.streaming`), so
``--stream-samples`` may exceed RAM while peak memory stays
O(``--chunk-size``); ``--input`` ingests a ``.jsonl``/``.csv``/``.npy``
file instead of the synthetic generator, and ``--ingest-kernel`` selects the
fused encode+accumulate backend (:mod:`repro.hdc.ingest`).  ``serve`` loads such an artifact once and answers
JSONL prediction requests from stdin or a file; with ``--stream`` it
also learns incrementally from records carrying a ``"target"`` field,
checkpointing atomically (see ``docs/SERVING.md`` for the model format
and ``docs/STREAMING.md`` for the streaming protocol).

``serve-http`` is the network tier: one process serves *every*
``--model NAME=PATH`` over HTTP with adaptive micro-batching (concurrent
requests coalesce into single kernel calls, bit-identical to sequential
serving), bounded-queue admission control (429 on overload) and a
zero-downtime ``:swap`` endpoint for hot model replacement — see
``docs/SERVING.md`` for the full walkthrough.  With ``--proc-workers``
above 1 every model's packed tables are published into a shared-memory
segment and coalesced batches shard across worker processes
(:mod:`repro.serve.procpool`), bit-identical to in-process serving.

Runtime flags (see ``docs/REPRODUCING.md`` for per-artifact guidance):

``--fast``
    Shrink dimensionality (and, for figure8, the sweep resolution) for a
    quick look; defaults follow the paper (d = 10,000).
``--workers N``
    Fan independent experiment cells out over ``N`` workers (``0`` =
    one per CPU).  Results are bit-identical to ``--workers 1``.
``--no-cache``
    Bypass the artifact cache.  By default, results for table1, table2,
    figure7 and figure8 are content-addressed by their full
    configuration and cached as JSON under ``benchmarks/results/``
    (override with ``--cache-dir`` or ``REPRO_RESULTS_DIR``); re-running
    an identical command is a logged cache hit that recomputes nothing.

``calibrate`` measures this host's kernel/streaming/worker throughput
surface and writes the calibration artifact every knob consumer reads
through ``REPRO_CALIBRATION`` (see :mod:`repro.tuning` and
``docs/PERFORMANCE.md``).  ``check-deadline`` replays recorded workload
specs against the current configuration and exits non-zero on any
budget miss — the CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import sys

import numpy as np

from ..analysis import figure3_data, figure6_data, format_table, render_heatmap
from ..exceptions import InvalidParameterError, ModelFormatError
from ..learning.metrics import normalized_mse
from ..runtime import ArtifactStore, WorkerPool
from ..serve import InferenceEngine, save_model
from .classification import BASIS_KINDS, run_table1
from .config import ClassificationConfig, RegressionConfig
from .regression import run_table2
from .rsweep import run_rsweep
from .serving import SERVABLE_TASKS, train_pipeline

__all__ = ["main"]

#: Dimensionality cap applied by ``--fast``.
FAST_DIM = 1024


def _effective_dim(args: argparse.Namespace) -> int:
    return min(args.dim, FAST_DIM) if args.fast else args.dim


def _store(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(root=args.cache_dir, enabled=not args.no_cache)


def _print_table1(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    config = ClassificationConfig(dim=dim, seed=args.seed)
    results = run_table1(config, workers=args.workers, store=_store(args))
    rows = [
        [task.replace("_", " ").title()] + [f"{100 * results[task][k]:.1f}%" for k in ("random", "level", "circular")]
        for task in results
    ]
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Table 1: classification accuracy (d={dim}, r=0.1, seed={args.seed})",
    ))


def _print_table2(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    config = RegressionConfig(dim=dim, seed=args.seed)
    results = run_table2(config, workers=args.workers, store=_store(args))
    rows = [
        [ds.replace("_", " ").title()] + [results[ds][k] for k in ("random", "level", "circular")]
        for ds in results
    ]
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Table 2: regression MSE (d={dim}, r=0.01, seed={args.seed})",
        digits=1,
    ))


def _print_figure3(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    data = figure3_data(size=args.size, dim=dim, seed=args.seed)
    for kind, matrix in data.items():
        print(f"\nFigure 3 — {kind} basis pairwise similarity "
              f"(size={args.size}, d={dim}):")
        print(render_heatmap(matrix, vmin=0.5, vmax=1.0))
        print(np.array2string(matrix, precision=2, suppress_small=True))


def _print_figure6(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    data = figure6_data(size=10, dim=dim, seed=args.seed)
    rows = [[f"r={r}"] + [float(v) for v in profile] for r, profile in data.items()]
    headers = ["profile"] + [f"node{i}" for i in range(10)]
    print(format_table(headers, rows,
                       title=f"Figure 6: similarity to reference node (d={dim})"))


def _print_figure7(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    config = RegressionConfig(dim=dim, seed=args.seed)
    results = run_table2(config, workers=args.workers, store=_store(args))
    rows = []
    for ds in results:
        reference = results[ds]["random"]
        rows.append([ds.replace("_", " ").title()] + [
            normalized_mse(results[ds][k], reference) for k in ("random", "level", "circular")
        ])
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Figure 7: normalized regression MSE (d={dim}, seed={args.seed})",
    ))


def _print_figure8(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    if args.fast:
        r_values = (0.0, 0.05, 0.2, 1.0)
    else:
        r_values = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)
    c_config = ClassificationConfig(dim=dim, seed=args.seed)
    r_config = RegressionConfig(dim=dim, seed=args.seed)
    sweep = run_rsweep(
        r_values,
        classification_config=c_config,
        regression_config=r_config,
        workers=args.workers,
        store=_store(args),
    )
    headers = ["Dataset"] + [f"r={r}" for r in sweep.r_values]
    rows = [
        [ds.replace("_", " ").title()] + list(sweep.normalized_error[ds])
        for ds in sweep.normalized_error
    ]
    print(format_table(headers, rows,
                       title="Figure 8: normalized error vs r (reference: random basis)"))


def _run_train(args: argparse.Namespace) -> None:
    """Train one servable pipeline and write it as a model artifact.

    With ``--stream`` the training set is a synthetic
    :mod:`repro.streaming` source consumed chunk by chunk (O(chunk)
    peak memory; scale it with ``--stream-samples``), optionally
    dropping an atomic checkpoint every ``--checkpoint-every`` chunks.
    """
    if not args.out:
        raise SystemExit("train requires --out MODEL.npz")
    dim = _effective_dim(args)
    if args.task == "mars_express":
        config: ClassificationConfig | RegressionConfig = RegressionConfig(
            dim=dim, seed=args.seed
        )
    else:
        config = ClassificationConfig(dim=dim, seed=args.seed)
    if args.stream:
        from ..streaming.chunks import default_chunk_rows
        from ..streaming.train import train_pipeline_stream

        chunk_rows = default_chunk_rows(args.chunk_size)
        pipeline, stats = train_pipeline_stream(
            args.task,
            args.basis,
            config=config,
            stream_samples=args.stream_samples,
            chunk_size=chunk_rows,
            workers=args.workers,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            cluster_workers=args.cluster_workers,
            resume=args.resume,
            input_path=None if args.input in (None, "-") else args.input,
            ingest=args.ingest_kernel,
        )
    else:
        with WorkerPool(workers=args.workers) as pool:
            pipeline = train_pipeline(args.task, args.basis, config=config, pool=pool)
        stats = None
    path = save_model(pipeline, args.out)
    meta = pipeline.metadata
    metric = (
        f"test accuracy {100 * meta['test_accuracy']:.1f}%"
        if pipeline.kind == "classification"
        else f"test MSE {meta['test_mse']:.1f}"
    )
    print(
        f"trained {pipeline.kind} pipeline: task={meta['task']} "
        f"basis={meta['basis_kind']} d={meta['dim']} seed={meta['seed']} "
        f"({meta['num_train']} train / {meta['num_test']} test, {metric})"
    )
    if stats is not None:
        print(
            f"streamed {stats.rows} rows in {stats.chunks} chunks "
            f"of <= {chunk_rows} rows (peak memory O(chunk))"
        )
    print(f"saved model to {path} ({path.stat().st_size} bytes)")


def _json_safe(value) -> object:
    """Coerce a prediction to a JSON-serialisable scalar.

    Delegates to :func:`repro.serve.server.json_scalar` — the JSONL loop
    and the HTTP tier must serialise identically, or transcripts from
    the two paths would not compare.
    """
    from ..serve.server import json_scalar

    return json_scalar(value)


def _finite_number(value) -> bool:
    try:
        return (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(float(value))
        )
    except OverflowError:  # ints too large for float
        return False


def _parse_request(
    line: str, lineno: int, num_features: int, allow_target: bool = False
) -> tuple[list[float], float | None]:
    """One JSONL request: ``(features, target)``.

    ``target`` is ``None`` for plain prediction requests; training
    records (``{"features": [...], "target": y}``) are only accepted
    when ``allow_target`` is set (the ``serve --stream`` mode).
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise InvalidParameterError(f"request line {lineno} is not JSON: {exc}") from exc
    target = None
    if isinstance(payload, dict):
        if "target" in payload:
            if not allow_target:
                raise InvalidParameterError(
                    f"request line {lineno} carries a training target; "
                    "run serve with --stream to learn from targets"
                )
            target = payload["target"]
            if not _finite_number(target):
                raise InvalidParameterError(
                    f"request line {lineno} target must be a finite number"
                )
        payload = payload.get("features")
    if not isinstance(payload, list):
        raise InvalidParameterError(
            f"request line {lineno} must be a JSON list or {{\"features\": [...]}}"
        )
    if len(payload) != num_features:
        raise InvalidParameterError(
            f"request line {lineno} has {len(payload)} feature(s); "
            f"this model takes {num_features}"
        )
    for v in payload:
        if not _finite_number(v):
            raise InvalidParameterError(
                f"request line {lineno} must contain only finite numbers"
            )
    return payload, target


def _run_serve(args: argparse.Namespace) -> None:
    """Answer JSONL prediction requests against a saved model.

    Reads one request per line (``[f1, f2, …]`` or
    ``{"features": [...]}``) from stdin (``--input -``) or a file and
    writes one ``{"prediction": …}`` JSON object per request line, in
    order.  With the default ``--batch-size 1`` every request is
    answered as soon as it arrives (a request/response client over a
    pipe never blocks); larger values micro-batch bulk input.

    With ``--stream`` the loop also *ingests training records*:
    a line ``{"features": [...], "target": y}`` is learned into the
    live model (answered with ``{"learned": …}``) and affects every
    later prediction; ``--checkpoint PATH`` atomically snapshots the
    updated pipeline every ``--checkpoint-every`` learned records, so a
    crash never loses more than one interval of traffic.
    """
    if not args.model:
        raise SystemExit("serve requires --model MODEL.npz")
    if len(args.model) > 1:
        raise SystemExit(
            "serve takes exactly one --model; use serve-http for multi-model serving"
        )
    model_path = args.model[0]
    if args.input == "-":
        stream = sys.stdin
    else:
        try:
            # Open the request source before paying the model-load cost,
            # so a bad path fails cleanly without spinning up a pool.
            stream = open(args.input, encoding="utf-8")
        except OSError as exc:
            raise SystemExit(f"cannot open --input {args.input}: {exc}") from exc
    engine = None
    learner = None
    try:
        try:
            if args.stream:
                from ..serve import OnlineLearner, TrainedPipeline, load_model

                pipeline = load_model(model_path)
                if not isinstance(pipeline, TrainedPipeline):
                    raise InvalidParameterError(
                        f"{model_path} holds a {type(pipeline).__name__}, not a "
                        "TrainedPipeline; wrap bare models in a pipeline to serve them"
                    )
                learner = OnlineLearner(
                    pipeline, workers=args.workers, backend=args.kernel
                )
                engine = learner.engine
            else:
                engine = InferenceEngine.from_path(
                    model_path, workers=args.workers, backend=args.kernel
                )
        except (InvalidParameterError, ModelFormatError) as exc:
            raise SystemExit(f"cannot load --model {model_path}: {exc}") from exc
        mode = "stream-serving" if args.stream else "serving"
        print(
            f"{mode} {engine.kind} model from {model_path} "
            f"(d={engine.pipeline.dim}, {engine.num_features} feature(s)/record)",
            file=sys.stderr,
        )
        state = {"since_checkpoint": 0}

        def maybe_checkpoint() -> None:
            if args.checkpoint and state["since_checkpoint"] >= args.checkpoint_every:
                learner.checkpoint(args.checkpoint)
                state["since_checkpoint"] = 0

        def flush(batch: list[tuple[list[float], float | None]]) -> None:
            # Contiguous runs of the same record type are answered as one
            # micro-batch, keeping responses in request order.
            i = 0
            while i < len(batch):
                j = i
                learning = batch[i][1] is not None
                while j < len(batch) and (batch[j][1] is not None) == learning:
                    j += 1
                feats = np.asarray([rec[0] for rec in batch[i:j]], dtype=np.float64)
                if learning:
                    targets: list = [rec[1] for rec in batch[i:j]]
                    if engine.kind == "classification":
                        targets = [int(t) for t in targets]
                    learner.learn(feats, targets)
                    state["since_checkpoint"] += j - i
                    for _ in range(j - i):
                        print(
                            json.dumps(
                                {"learned": True, "num_samples": learner.num_samples}
                            ),
                            flush=True,
                        )
                    maybe_checkpoint()
                elif j - i == 1:
                    # Single-record fast path (bit-identical to the batch
                    # route); the request/response loop lives here.
                    value = engine.predict_one(feats[0])
                    print(json.dumps({"prediction": _json_safe(value)}), flush=True)
                else:
                    for value in engine.predict(feats):
                        print(json.dumps({"prediction": _json_safe(value)}), flush=True)
                i = j

        pending: list[tuple[list[float], float | None]] = []
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                features, target = _parse_request(
                    line, lineno, engine.num_features, allow_target=args.stream
                )
                if (
                    target is not None
                    and engine.kind == "classification"
                    and not float(target).is_integer()
                ):
                    raise InvalidParameterError(
                        f"request line {lineno}: classification targets must be "
                        f"integer class ids, got {target!r}"
                    )
                pending.append((features, target))
            except InvalidParameterError:
                # Answer everything already accepted before failing, so
                # the client knows exactly which requests were served.
                flush(pending)
                raise
            if len(pending) >= args.batch_size:
                flush(pending)
                pending = []
        flush(pending)
        if learner is not None and args.checkpoint and state["since_checkpoint"]:
            learner.checkpoint(args.checkpoint)
    finally:
        if learner is not None:
            learner.close()
        elif engine is not None:
            engine.close()
        if stream is not sys.stdin:
            stream.close()


def _run_serve_http(args: argparse.Namespace) -> None:
    """Serve every ``--model NAME=PATH`` over HTTP with micro-batching.

    Binds the asyncio front end (:mod:`repro.serve.server`), prints the
    bound address (``--port 0`` picks an ephemeral port — scripts parse
    the printed line), and serves until interrupted.  Concurrent
    requests to the same model coalesce into single kernel calls
    (bit-identical to sequential serving); ``POST
    /v1/models/NAME:swap`` hot-swaps a model with zero downtime.
    """
    from ..serve import ModelRegistry, ServerThread

    if not args.model:
        raise SystemExit("serve-http requires at least one --model NAME=MODEL.npz")
    registry = ModelRegistry(
        workers=args.workers, backend=args.kernel, proc_workers=args.proc_workers
    )
    try:
        for spec in args.model:
            name, sep, path = spec.partition("=")
            if not sep or not name or not path:
                raise SystemExit(
                    f"--model must be NAME=MODEL.npz for serve-http, got {spec!r}"
                )
            try:
                registry.register(name, path)
            except (InvalidParameterError, ModelFormatError) as exc:
                raise SystemExit(f"cannot load --model {spec}: {exc}") from exc
            engine = registry.engine(name)
            print(
                f"loaded {name}: {engine.kind} model from {path} "
                f"(d={engine.pipeline.dim}, {engine.num_features} feature(s)/record)",
                file=sys.stderr,
            )
        server = ServerThread(
            registry,
            host=args.host,
            port=args.port,
            window_ms=args.batch_window_ms,
            max_batch=args.batch_max,
            max_queue=args.max_queue,
        ).start()
        try:
            print(
                f"serving {len(registry)} model(s) on "
                f"http://{server.host}:{server.port}",
                flush=True,
            )
            import time as _time

            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            try:
                server.stop()
            except KeyboardInterrupt:
                # A second Ctrl-C mid-drain: finish the teardown anyway
                # so the port and worker pools are released cleanly.
                server.stop()
    finally:
        registry.close()


def _run_calibrate(args: argparse.Namespace) -> None:
    """Measure this host and write the calibration artifact.

    ``--fast`` runs a reduced sweep (fewer points and repeats) for CI
    and smoke use; the full sweep is the one to record.  ``--report``
    additionally writes the raw measurement report (the throughput
    surface, scaling curves and derivation) as JSON.
    """
    from ..tuning import calibrate
    from ..tuning.calibration import save_calibration

    dim = _effective_dim(args)
    calibration, report = calibrate(fast=args.fast, dim=dim, seed=args.seed)
    out = args.out or "calibration.json"
    path = save_calibration(calibration, out)
    print(f"calibrated {report['host']['platform']} ({report['host']['cpus']} cpu(s), "
          f"d={dim}, {'fast' if args.fast else 'full'} sweep)")
    for section, knobs in calibration.knobs.items():
        for name, value in knobs.items():
            print(f"  {section}.{name} = {value}")
    worst = report.get("auto_worst_over_best")
    if worst is not None:
        print(f"  auto dispatch worst-case vs best fixed backend: {worst:.3f}x")
    print(f"wrote {path} — activate with REPRO_CALIBRATION={path}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote measurement report to {args.report}")


def _run_check_deadline(args: argparse.Namespace) -> None:
    """Replay workload specs and fail on any blown budget."""
    from ..exceptions import CalibrationError
    from ..tuning import check_deadline

    if not args.workload:
        raise SystemExit("check-deadline requires at least one --workload SPEC.json")
    try:
        code, results = check_deadline(args.workload)
    except CalibrationError as exc:
        raise SystemExit(f"check-deadline: {exc}") from exc
    for result in results:
        status = "PASS" if result["ok"] else "FAIL"
        print(f"[{status}] {result['name']} ({result['target']})")
        for check in result["checks"]:
            mark = "ok  " if check["ok"] else "MISS"
            print(f"  {mark} {check['budget']}: measured {check['measured']} "
                  f"<= budget {check['limit']}")
    if code:
        raise SystemExit(code)
    print("all deadlines met")


_TARGETS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "figure3": _print_figure3,
    "figure6": _print_figure6,
    "figure7": _print_figure7,
    "figure8": _print_figure8,
    "train": _run_train,
    "serve": _run_serve,
    "serve-http": _run_serve_http,
    "calibrate": _run_calibrate,
    "check-deadline": _run_check_deadline,
}


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code.

    Example
    -------
    >>> import contextlib, io
    >>> buf = io.StringIO()
    >>> with contextlib.redirect_stdout(buf):
    ...     code = main(["figure6", "--dim", "128", "--seed", "1"])
    >>> code
    0
    >>> "Figure 6" in buf.getvalue()
    True
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=sorted(_TARGETS))
    parser.add_argument("--dim", type=int, default=10_000, help="hyperspace dimension")
    parser.add_argument("--seed", type=int, default=2023, help="master seed")
    parser.add_argument("--size", type=int, default=10, help="basis size (figure3)")
    parser.add_argument("--fast", action="store_true",
                        help=f"smaller, quicker run (dim capped at {FAST_DIM})")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel experiment cells (0 = one per CPU; "
                             "default: REPRO_WORKERS env, then the calibration "
                             "artifact, then 1); results are bit-identical "
                             "for any value")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute even if a cached result exists, and do not cache")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: benchmarks/results, "
                             "or $REPRO_RESULTS_DIR)")
    serving = parser.add_argument_group("model serving (train / serve targets)")
    serving.add_argument("--task", choices=sorted(SERVABLE_TASKS), default="suturing",
                         help="pipeline to train: a gesture task (classification) "
                              "or mars_express (regression)")
    serving.add_argument("--basis", choices=BASIS_KINDS, default="circular",
                         help="value basis for the trained pipeline")
    serving.add_argument("--out", default=None, metavar="PATH",
                         help="where `train` writes the model artifact "
                              "(required) and `calibrate` writes the "
                              "calibration artifact (default: calibration.json)")
    serving.add_argument("--model", action="append", default=None,
                         metavar="MODEL.npz",
                         help="model artifact `serve` loads (required); for "
                              "`serve-http` repeatable NAME=MODEL.npz pairs — "
                              "every named model is served from one process")
    serving.add_argument("--input", default="-",
                         help="JSONL request source for `serve` (a path, or - "
                              "for stdin); for `train --stream`, a .jsonl, "
                              ".csv or .npy training file ingested instead of "
                              "the synthetic stream (targets for .npy ride in "
                              "a sibling <stem>.targets.npy; for .csv in the "
                              "column named 'target')")
    serving.add_argument("--batch-size", type=int, default=1,
                         help="records per serve micro-batch. The default (1) "
                              "answers every request as it arrives — safe for "
                              "interactive request/response clients; raise it "
                              "for bulk piped input (responses stay in request "
                              "order either way)")
    serving.add_argument("--kernel", choices=["auto", "gemm", "xor", "xor-mt"],
                         default=None,
                         help="similarity-kernel backend for `serve` distance "
                              "scans (default: REPRO_KERNEL env or auto; all "
                              "choices answer bit-identically)")
    streaming = parser.add_argument_group("streaming (train --stream / serve --stream)")
    streaming.add_argument("--stream", action="store_true",
                           help="train: consume the training set as an "
                                "out-of-core chunk stream (O(chunk) memory); "
                                "serve: also learn from JSONL records that "
                                "carry a \"target\" field")
    streaming.add_argument("--stream-samples", type=int, default=None,
                           help="total training rows `train --stream` generates "
                                "(default: the generator's paper-scale size); "
                                "may exceed RAM — memory stays O(--chunk-size)")
    streaming.add_argument("--chunk-size", type=int, default=None,
                           help="rows per streamed chunk — the memory knob of "
                                "--stream (default: REPRO_CHUNK_ROWS env, then "
                                "the calibration artifact, then 1024; results "
                                "are bit-identical for any value)")
    streaming.add_argument("--checkpoint", default=None, metavar="CKPT.npz",
                           help="atomic checkpoint file updated while "
                                "streaming (train: every --checkpoint-every "
                                "chunks; serve: every --checkpoint-every "
                                "learned records)")
    streaming.add_argument("--checkpoint-every", type=int, default=8,
                           help="checkpoint interval for --checkpoint "
                                "(default: 8)")
    streaming.add_argument("--cluster-workers", type=int, default=None,
                           help="worker *processes* for distributed `train "
                                "--stream` ingest (default: "
                                "REPRO_CLUSTER_WORKERS env, then the "
                                "calibration artifact's cluster.workers, then "
                                "1 = in-process); the final model is "
                                "bit-identical for any value")
    streaming.add_argument("--ingest-kernel",
                           choices=["auto", "ref", "fused", "numba"],
                           default=None,
                           help="ingest kernel backend for `train --stream` "
                                "reduction (default: REPRO_INGEST_KERNEL env "
                                "or auto; all choices train bit-identical "
                                "models — see docs/PERFORMANCE.md)")
    streaming.add_argument("--resume", action="store_true",
                           help="reload --checkpoint (with its resume cursor) "
                                "and stream only the remaining chunks; the "
                                "finished model equals an uninterrupted run "
                                "byte for byte")
    http = parser.add_argument_group("HTTP serving (serve-http target)")
    http.add_argument("--host", default="127.0.0.1",
                      help="bind address for serve-http (default: 127.0.0.1)")
    http.add_argument("--port", type=int, default=8094,
                      help="bind port for serve-http; 0 picks an ephemeral "
                           "port and prints it (default: 8094)")
    http.add_argument("--batch-window-ms", type=float, default=None,
                      help="micro-batch coalescing window in ms (default: "
                           "REPRO_SERVE_BATCH_WINDOW_MS env, then the "
                           "calibration artifact's serve.batch_window_ms, "
                           "then 2.0); answers are bit-identical for any "
                           "value")
    http.add_argument("--batch-max", type=int, default=None,
                      help="max requests coalesced into one kernel call "
                           "(default: REPRO_SERVE_BATCH_MAX env, then "
                           "serve.batch_max, then 32); 1 disables coalescing")
    http.add_argument("--max-queue", type=int, default=None,
                      help="max in-flight requests per model before 429 "
                           "backpressure (default: REPRO_SERVE_MAX_QUEUE env, "
                           "then serve.max_queue, then 256)")
    http.add_argument("--proc-workers", type=int, default=None,
                      help="worker processes for the shared-memory predict "
                           "tier; 0 = auto (one per CPU on >=4-core hosts), "
                           "1 = in-process only (default: "
                           "REPRO_SERVE_PROC_WORKERS env, then "
                           "serve.proc_workers, then auto); answers are "
                           "bit-identical for any value")
    tuning = parser.add_argument_group("tuning (calibrate / check-deadline targets)")
    tuning.add_argument("--report", default=None, metavar="REPORT.json",
                        help="where `calibrate` writes the raw measurement "
                             "report (surface, scaling curves, derivation)")
    tuning.add_argument("--workload", action="append", default=None,
                        metavar="SPEC.json",
                        help="workload spec for `check-deadline` (repeatable); "
                             "see benchmarks/workloads/ for the format")
    args = parser.parse_args(argv)
    if args.batch_size < 1:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    if args.chunk_size is not None and args.chunk_size < 1:
        parser.error(f"--chunk-size must be positive, got {args.chunk_size}")
    if args.checkpoint_every < 1:
        parser.error(f"--checkpoint-every must be positive, got {args.checkpoint_every}")
    if args.cluster_workers is not None and args.cluster_workers < 1:
        parser.error(
            f"--cluster-workers must be positive, got {args.cluster_workers}"
        )
    if args.cluster_workers is not None and not args.stream:
        parser.error("--cluster-workers requires --stream")
    if args.resume and not (args.stream and args.checkpoint):
        parser.error("--resume requires --stream and --checkpoint")
    if args.port < 0:
        parser.error(f"--port must be >= 0, got {args.port}")
    if args.batch_window_ms is not None and args.batch_window_ms < 0:
        parser.error(f"--batch-window-ms must be >= 0, got {args.batch_window_ms}")
    if args.batch_max is not None and args.batch_max < 1:
        parser.error(f"--batch-max must be positive, got {args.batch_max}")
    if args.max_queue is not None and args.max_queue < 1:
        parser.error(f"--max-queue must be positive, got {args.max_queue}")
    if args.proc_workers is not None and args.proc_workers < 0:
        parser.error(f"--proc-workers must be >= 0, got {args.proc_workers}")
    if args.workers is None:
        # Unconfigured callers get the calibrated default (builtin: 1);
        # an explicit --workers (incl. 0 = one per CPU) passes through.
        from ..runtime.pool import default_workers

        args.workers = default_workers()
    logging.basicConfig(
        level=logging.INFO, stream=sys.stderr, format="[%(name)s] %(message)s"
    )
    _TARGETS[args.target](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
