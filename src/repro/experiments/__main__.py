"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments table1 [--dim D] [--seed S] [--workers N]
    python -m repro.experiments table2 [--dim D] [--seed S] [--workers N]
    python -m repro.experiments figure3 [--size M] [--dim D]
    python -m repro.experiments figure6 [--dim D]
    python -m repro.experiments figure7 [--dim D] [--workers N]
    python -m repro.experiments figure8 [--dim D] [--workers N] [--fast]

Runtime flags (see ``docs/REPRODUCING.md`` for per-artifact guidance):

``--fast``
    Shrink dimensionality (and, for figure8, the sweep resolution) for a
    quick look; defaults follow the paper (d = 10,000).
``--workers N``
    Fan independent experiment cells out over ``N`` workers (``0`` =
    one per CPU).  Results are bit-identical to ``--workers 1``.
``--no-cache``
    Bypass the artifact cache.  By default, results for table1, table2,
    figure7 and figure8 are content-addressed by their full
    configuration and cached as JSON under ``benchmarks/results/``
    (override with ``--cache-dir`` or ``REPRO_RESULTS_DIR``); re-running
    an identical command is a logged cache hit that recomputes nothing.
"""

from __future__ import annotations

import argparse
import logging
import sys

import numpy as np

from ..analysis import figure3_data, figure6_data, format_table, render_heatmap
from ..learning.metrics import normalized_mse
from ..runtime import ArtifactStore
from .classification import run_table1
from .config import ClassificationConfig, RegressionConfig
from .regression import run_table2
from .rsweep import run_rsweep

__all__ = ["main"]

#: Dimensionality cap applied by ``--fast``.
FAST_DIM = 1024


def _effective_dim(args: argparse.Namespace) -> int:
    return min(args.dim, FAST_DIM) if args.fast else args.dim


def _store(args: argparse.Namespace) -> ArtifactStore:
    return ArtifactStore(root=args.cache_dir, enabled=not args.no_cache)


def _print_table1(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    config = ClassificationConfig(dim=dim, seed=args.seed)
    results = run_table1(config, workers=args.workers, store=_store(args))
    rows = [
        [task.replace("_", " ").title()] + [f"{100 * results[task][k]:.1f}%" for k in ("random", "level", "circular")]
        for task in results
    ]
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Table 1: classification accuracy (d={dim}, r=0.1, seed={args.seed})",
    ))


def _print_table2(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    config = RegressionConfig(dim=dim, seed=args.seed)
    results = run_table2(config, workers=args.workers, store=_store(args))
    rows = [
        [ds.replace("_", " ").title()] + [results[ds][k] for k in ("random", "level", "circular")]
        for ds in results
    ]
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Table 2: regression MSE (d={dim}, r=0.01, seed={args.seed})",
        digits=1,
    ))


def _print_figure3(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    data = figure3_data(size=args.size, dim=dim, seed=args.seed)
    for kind, matrix in data.items():
        print(f"\nFigure 3 — {kind} basis pairwise similarity "
              f"(size={args.size}, d={dim}):")
        print(render_heatmap(matrix, vmin=0.5, vmax=1.0))
        print(np.array2string(matrix, precision=2, suppress_small=True))


def _print_figure6(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    data = figure6_data(size=10, dim=dim, seed=args.seed)
    rows = [[f"r={r}"] + [float(v) for v in profile] for r, profile in data.items()]
    headers = ["profile"] + [f"node{i}" for i in range(10)]
    print(format_table(headers, rows,
                       title=f"Figure 6: similarity to reference node (d={dim})"))


def _print_figure7(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    config = RegressionConfig(dim=dim, seed=args.seed)
    results = run_table2(config, workers=args.workers, store=_store(args))
    rows = []
    for ds in results:
        reference = results[ds]["random"]
        rows.append([ds.replace("_", " ").title()] + [
            normalized_mse(results[ds][k], reference) for k in ("random", "level", "circular")
        ])
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Figure 7: normalized regression MSE (d={dim}, seed={args.seed})",
    ))


def _print_figure8(args: argparse.Namespace) -> None:
    dim = _effective_dim(args)
    if args.fast:
        r_values = (0.0, 0.05, 0.2, 1.0)
    else:
        r_values = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)
    c_config = ClassificationConfig(dim=dim, seed=args.seed)
    r_config = RegressionConfig(dim=dim, seed=args.seed)
    sweep = run_rsweep(
        r_values,
        classification_config=c_config,
        regression_config=r_config,
        workers=args.workers,
        store=_store(args),
    )
    headers = ["Dataset"] + [f"r={r}" for r in sweep.r_values]
    rows = [
        [ds.replace("_", " ").title()] + list(sweep.normalized_error[ds])
        for ds in sweep.normalized_error
    ]
    print(format_table(headers, rows,
                       title="Figure 8: normalized error vs r (reference: random basis)"))


_TARGETS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "figure3": _print_figure3,
    "figure6": _print_figure6,
    "figure7": _print_figure7,
    "figure8": _print_figure8,
}


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code.

    Example
    -------
    >>> import contextlib, io
    >>> buf = io.StringIO()
    >>> with contextlib.redirect_stdout(buf):
    ...     code = main(["figure6", "--dim", "128", "--seed", "1"])
    >>> code
    0
    >>> "Figure 6" in buf.getvalue()
    True
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=sorted(_TARGETS))
    parser.add_argument("--dim", type=int, default=10_000, help="hyperspace dimension")
    parser.add_argument("--seed", type=int, default=2023, help="master seed")
    parser.add_argument("--size", type=int, default=10, help="basis size (figure3)")
    parser.add_argument("--fast", action="store_true",
                        help=f"smaller, quicker run (dim capped at {FAST_DIM})")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel experiment cells (0 = one per CPU); "
                             "results are bit-identical to --workers 1")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute even if a cached result exists, and do not cache")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: benchmarks/results, "
                             "or $REPRO_RESULTS_DIR)")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO, stream=sys.stderr, format="[%(name)s] %(message)s"
    )
    _TARGETS[args.target](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
