"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments table1 [--dim D] [--seed S]
    python -m repro.experiments table2 [--dim D] [--seed S]
    python -m repro.experiments figure3 [--size M] [--dim D]
    python -m repro.experiments figure6 [--dim D]
    python -m repro.experiments figure7 [--dim D]
    python -m repro.experiments figure8 [--dim D] [--fast]

``--fast`` shrinks dimensionality and sweep resolution for a quick look;
defaults follow the paper (d = 10,000).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from ..analysis import figure3_data, figure6_data, format_table, render_heatmap
from ..learning.metrics import normalized_mse
from .classification import run_table1
from .config import ClassificationConfig, RegressionConfig
from .regression import run_table2
from .rsweep import run_rsweep

__all__ = ["main"]


def _print_table1(args: argparse.Namespace) -> None:
    config = ClassificationConfig(dim=args.dim, seed=args.seed)
    results = run_table1(config)
    rows = [
        [task.replace("_", " ").title()] + [f"{100 * results[task][k]:.1f}%" for k in ("random", "level", "circular")]
        for task in results
    ]
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Table 1: classification accuracy (d={args.dim}, r=0.1, seed={args.seed})",
    ))


def _print_table2(args: argparse.Namespace) -> None:
    config = RegressionConfig(dim=args.dim, seed=args.seed)
    results = run_table2(config)
    rows = [
        [ds.replace("_", " ").title()] + [results[ds][k] for k in ("random", "level", "circular")]
        for ds in results
    ]
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Table 2: regression MSE (d={args.dim}, r=0.01, seed={args.seed})",
        digits=1,
    ))


def _print_figure3(args: argparse.Namespace) -> None:
    data = figure3_data(size=args.size, dim=args.dim, seed=args.seed)
    for kind, matrix in data.items():
        print(f"\nFigure 3 — {kind} basis pairwise similarity "
              f"(size={args.size}, d={args.dim}):")
        print(render_heatmap(matrix, vmin=0.5, vmax=1.0))
        print(np.array2string(matrix, precision=2, suppress_small=True))


def _print_figure6(args: argparse.Namespace) -> None:
    data = figure6_data(size=10, dim=args.dim, seed=args.seed)
    rows = [[f"r={r}"] + [float(v) for v in profile] for r, profile in data.items()]
    headers = ["profile"] + [f"node{i}" for i in range(10)]
    print(format_table(headers, rows,
                       title=f"Figure 6: similarity to reference node (d={args.dim})"))


def _print_figure7(args: argparse.Namespace) -> None:
    config = RegressionConfig(dim=args.dim, seed=args.seed)
    results = run_table2(config)
    rows = []
    for ds in results:
        reference = results[ds]["random"]
        rows.append([ds.replace("_", " ").title()] + [
            normalized_mse(results[ds][k], reference) for k in ("random", "level", "circular")
        ])
    print(format_table(
        ["Dataset", "Random", "Level", "Circular"],
        rows,
        title=f"Figure 7: normalized regression MSE (d={args.dim}, seed={args.seed})",
    ))


def _print_figure8(args: argparse.Namespace) -> None:
    if args.fast:
        r_values = (0.0, 0.05, 0.2, 1.0)
        c_config = ClassificationConfig(dim=min(args.dim, 4096), seed=args.seed)
        r_config = RegressionConfig(dim=min(args.dim, 4096), seed=args.seed)
    else:
        r_values = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)
        c_config = ClassificationConfig(dim=args.dim, seed=args.seed)
        r_config = RegressionConfig(dim=args.dim, seed=args.seed)
    sweep = run_rsweep(r_values, classification_config=c_config, regression_config=r_config)
    headers = ["Dataset"] + [f"r={r}" for r in sweep.r_values]
    rows = [
        [ds.replace("_", " ").title()] + list(sweep.normalized_error[ds])
        for ds in sweep.normalized_error
    ]
    print(format_table(headers, rows,
                       title="Figure 8: normalized error vs r (reference: random basis)"))


_TARGETS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "figure3": _print_figure3,
    "figure6": _print_figure6,
    "figure7": _print_figure7,
    "figure8": _print_figure8,
}


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=sorted(_TARGETS))
    parser.add_argument("--dim", type=int, default=10_000, help="hyperspace dimension")
    parser.add_argument("--seed", type=int, default=2023, help="master seed")
    parser.add_argument("--size", type=int, default=10, help="basis size (figure3)")
    parser.add_argument("--fast", action="store_true", help="smaller, quicker sweep")
    args = parser.parse_args(argv)
    _TARGETS[args.target](args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
