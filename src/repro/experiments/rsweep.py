"""The Figure 8 experiment: sweeping the r-hyperparameter.

For every dataset (three classification tasks + two regression tasks) and
every ``r`` in the sweep, run the circular-basis experiment with that
``r`` and report the error *normalized against the random-basis result*
(Section 6.3):

* regression → normalized MSE ``mse(r) / mse_random``,
* classification → normalized accuracy error
  ``(1 − α(r)) / (1 − α_random)``.

At ``r = 1`` a circular set degenerates into a random set, so every curve
approaches 1 there; the paper's finding is the dip below 1 at small
``r > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from .._rng import ensure_rng
from ..datasets import make_beijing_like, make_jigsaws_like, make_mars_express_like
from ..exceptions import InvalidParameterError
from ..learning.metrics import normalized_accuracy_error, normalized_mse
from .classification import run_classification
from .config import ClassificationConfig, RegressionConfig
from .regression import run_regression

__all__ = ["RSweepResult", "SWEEP_DATASETS", "run_rsweep"]

#: The five datasets of Figure 8.
SWEEP_DATASETS = (
    "beijing",
    "mars_express",
    "knot_tying",
    "needle_passing",
    "suturing",
)

_CLASSIFICATION = ("knot_tying", "needle_passing", "suturing")
_REGRESSION = ("beijing", "mars_express")


@dataclass(frozen=True)
class RSweepResult:
    """The Figure 8 data: normalized error per dataset per r-value."""

    r_values: tuple[float, ...]
    normalized_error: Mapping[str, tuple[float, ...]]
    reference: Mapping[str, float]

    def series(self, dataset: str) -> tuple[float, ...]:
        """Normalized-error curve of one dataset, ordered as ``r_values``."""
        return self.normalized_error[dataset]


def run_rsweep(
    r_values: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0),
    datasets: Sequence[str] = SWEEP_DATASETS,
    classification_config: ClassificationConfig | None = None,
    regression_config: RegressionConfig | None = None,
) -> RSweepResult:
    """Regenerate Figure 8.

    Each dataset is generated once and shared across the sweep, and the
    random-basis reference is computed once per dataset, so the curves
    isolate the effect of ``r``.
    """
    if not r_values:
        raise InvalidParameterError("need at least one r value")
    for r in r_values:
        if not 0.0 <= r <= 1.0:
            raise InvalidParameterError(f"r values must lie in [0, 1], got {r}")
    classification_config = classification_config or ClassificationConfig()
    regression_config = regression_config or RegressionConfig()

    curves: dict[str, tuple[float, ...]] = {}
    references: dict[str, float] = {}
    for dataset in datasets:
        if dataset in _CLASSIFICATION:
            data_rng = ensure_rng(classification_config.seed).spawn(4)[0]
            split = make_jigsaws_like(task=dataset, seed=data_rng)
            reference = run_classification(
                dataset, "random", config=classification_config, split=split
            ).accuracy
            references[dataset] = reference
            series = []
            for r in r_values:
                cfg = replace(classification_config, circular_r=float(r))
                acc = run_classification(
                    dataset, "circular", config=cfg, split=split
                ).accuracy
                series.append(normalized_accuracy_error(acc, reference))
            curves[dataset] = tuple(series)
        elif dataset in _REGRESSION:
            data_rng = ensure_rng(regression_config.seed).spawn(6)[0]
            if dataset == "beijing":
                split = make_beijing_like(seed=data_rng)
            else:
                split = make_mars_express_like(seed=data_rng)
            reference = run_regression(
                dataset, "random", config=regression_config, split=split
            ).mse
            references[dataset] = reference
            series = []
            for r in r_values:
                cfg = replace(regression_config, circular_r=float(r))
                mse = run_regression(
                    dataset, "circular", config=cfg, split=split
                ).mse
                series.append(normalized_mse(mse, reference))
            curves[dataset] = tuple(series)
        else:
            raise InvalidParameterError(
                f"unknown dataset {dataset!r}; expected one of {SWEEP_DATASETS}"
            )
    return RSweepResult(
        r_values=tuple(float(r) for r in r_values),
        normalized_error=curves,
        reference=references,
    )
