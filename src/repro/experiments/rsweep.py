"""The Figure 8 experiment: sweeping the r-hyperparameter.

For every dataset (three classification tasks + two regression tasks) and
every ``r`` in the sweep, run the circular-basis experiment with that
``r`` and report the error *normalized against the random-basis result*
(Section 6.3):

* regression → normalized MSE ``mse(r) / mse_random``,
* classification → normalized accuracy error
  ``(1 − α(r)) / (1 − α_random)``.

At ``r = 1`` a circular set degenerates into a random set, so every curve
approaches 1 there; the paper's finding is the dip below 1 at small
``r > 0``.

This is the heaviest artifact of the paper — ``datasets × (1 + |r|)``
independent experiment cells — and the canonical parallel workload of
the runtime: :func:`run_rsweep` fans the cells out over a
:class:`~repro.runtime.pool.WorkerPool` (``workers=``) and every cell
derives its randomness from its config seed alone, so the sweep is
bit-identical to the serial run for any worker count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Mapping, Sequence

from .._rng import ensure_rng
from ..datasets import ClassificationSplit, RegressionSplit, make_jigsaws_like
from ..exceptions import InvalidParameterError
from ..learning.metrics import normalized_accuracy_error, normalized_mse
from ..runtime import ArtifactStore, WorkerPool
from .classification import run_classification
from .config import ClassificationConfig, RegressionConfig
from .regression import make_regression_split, run_regression

__all__ = ["RSweepResult", "SWEEP_DATASETS", "run_rsweep", "rsweep_cache_params"]

#: The five datasets of Figure 8.
SWEEP_DATASETS = (
    "beijing",
    "mars_express",
    "knot_tying",
    "needle_passing",
    "suturing",
)

_CLASSIFICATION = ("knot_tying", "needle_passing", "suturing")
_REGRESSION = ("beijing", "mars_express")


@dataclass(frozen=True)
class RSweepResult:
    """The Figure 8 data: normalized error per dataset per r-value."""

    r_values: tuple[float, ...]
    normalized_error: Mapping[str, tuple[float, ...]]
    reference: Mapping[str, float]

    def series(self, dataset: str) -> tuple[float, ...]:
        """Normalized-error curve of one dataset, ordered as ``r_values``."""
        return self.normalized_error[dataset]

    def to_payload(self) -> dict:
        """JSON-serialisable form (tuples become lists) for the artifact cache."""
        return {
            "r_values": list(self.r_values),
            "normalized_error": {k: list(v) for k, v in self.normalized_error.items()},
            "reference": dict(self.reference),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "RSweepResult":
        """Inverse of :meth:`to_payload`.

        >>> sweep = RSweepResult((0.0, 1.0), {"beijing": (1.2, 1.0)}, {"beijing": 3.4})
        >>> RSweepResult.from_payload(sweep.to_payload()) == sweep
        True
        """
        return cls(
            r_values=tuple(float(r) for r in payload["r_values"]),
            normalized_error={
                str(k): tuple(float(x) for x in v)
                for k, v in payload["normalized_error"].items()
            },
            reference={str(k): float(v) for k, v in payload["reference"].items()},
        )


def _sweep_cell(
    dataset: str,
    r: float | None,
    classification_config: ClassificationConfig,
    regression_config: RegressionConfig,
    split: ClassificationSplit | RegressionSplit,
) -> float:
    """One sweep cell: raw accuracy/MSE for (dataset, r).

    ``r=None`` is the random-basis reference cell.  Module-level (and
    fully self-seeded) so process pools can pickle and replay it.
    """
    if dataset in _CLASSIFICATION:
        if r is None:
            return run_classification(
                dataset, "random", config=classification_config, split=split
            ).accuracy
        cfg = replace(classification_config, circular_r=float(r))
        return run_classification(dataset, "circular", config=cfg, split=split).accuracy
    if r is None:
        return run_regression(
            dataset, "random", config=regression_config, split=split
        ).mse
    cfg = replace(regression_config, circular_r=float(r))
    return run_regression(dataset, "circular", config=cfg, split=split).mse


def rsweep_cache_params(
    r_values: Sequence[float],
    datasets: Sequence[str],
    classification_config: ClassificationConfig,
    regression_config: RegressionConfig,
) -> dict:
    """The content-hash key identifying one Figure 8 sweep configuration."""
    return {
        "r_values": [float(r) for r in r_values],
        "datasets": list(datasets),
        "classification_config": asdict(classification_config),
        "regression_config": asdict(regression_config),
    }


def run_rsweep(
    r_values: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0),
    datasets: Sequence[str] = SWEEP_DATASETS,
    classification_config: ClassificationConfig | None = None,
    regression_config: RegressionConfig | None = None,
    workers: int = 1,
    backend: str = "thread",
    store: ArtifactStore | None = None,
) -> RSweepResult:
    """Regenerate Figure 8.

    Each dataset is generated once and shared across the sweep, and the
    random-basis reference is computed once per dataset, so the curves
    isolate the effect of ``r``.

    Parameters
    ----------
    workers, backend:
        Fan the ``len(datasets) × (1 + len(r_values))`` independent
        cells out over a :class:`~repro.runtime.pool.WorkerPool`.  Every
        cell seeds itself from its config, so the sweep is
        **bit-identical to the serial run for any worker count**.
    store:
        Optional :class:`~repro.runtime.artifacts.ArtifactStore`; an
        identical earlier sweep is served from the cache without
        recomputation.

    Example
    -------
    >>> cfg_c = ClassificationConfig(dim=128, seed=5)
    >>> cfg_r = RegressionConfig(dim=128, seed=5)
    >>> sweep = run_rsweep((0.1, 1.0), datasets=("mars_express",),
    ...                    classification_config=cfg_c, regression_config=cfg_r)
    >>> sweep.r_values
    (0.1, 1.0)
    >>> len(sweep.series("mars_express"))
    2
    """
    if not r_values:
        raise InvalidParameterError("need at least one r value")
    for r in r_values:
        if not 0.0 <= r <= 1.0:
            raise InvalidParameterError(f"r values must lie in [0, 1], got {r}")
    classification_config = classification_config or ClassificationConfig()
    regression_config = regression_config or RegressionConfig()
    for dataset in datasets:
        if dataset not in SWEEP_DATASETS:
            raise InvalidParameterError(
                f"unknown dataset {dataset!r}; expected one of {SWEEP_DATASETS}"
            )

    params = rsweep_cache_params(
        r_values, datasets, classification_config, regression_config
    )
    if store is not None:
        cached = store.load("rsweep", params)
        if cached is not None:
            return RSweepResult.from_payload(cached)

    # Generate every split up front (deterministic from the config seeds),
    # then flatten the whole sweep — reference cells included — into one
    # task list for the pool.
    splits: dict[str, ClassificationSplit | RegressionSplit] = {}
    for dataset in datasets:
        if dataset in _CLASSIFICATION:
            data_rng = ensure_rng(classification_config.seed).spawn(4)[0]
            splits[dataset] = make_jigsaws_like(task=dataset, seed=data_rng)
        else:
            splits[dataset] = make_regression_split(dataset, regression_config)

    cells = [
        (dataset, r, classification_config, regression_config, splits[dataset])
        for dataset in datasets
        for r in (None, *r_values)
    ]
    with WorkerPool(workers=workers, backend=backend) as pool:
        raw = pool.starmap(_sweep_cell, cells)

    results: dict[tuple[str, float | None], float] = {
        (dataset, r): value for (dataset, r, _, _, _), value in zip(cells, raw)
    }
    curves: dict[str, tuple[float, ...]] = {}
    references: dict[str, float] = {}
    for dataset in datasets:
        reference = results[(dataset, None)]
        references[dataset] = reference
        if dataset in _CLASSIFICATION:
            series = [
                normalized_accuracy_error(results[(dataset, float(r))], reference)
                for r in r_values
            ]
        else:
            series = [
                normalized_mse(results[(dataset, float(r))], reference)
                for r in r_values
            ]
        curves[dataset] = tuple(series)
    sweep = RSweepResult(
        r_values=tuple(float(r) for r in r_values),
        normalized_error=curves,
        reference=references,
    )
    if store is not None:
        store.store("rsweep", params, sweep.to_payload())
    return sweep
