"""Train paper pipelines into servable artifacts (the ``train`` CLI).

:func:`train_pipeline` runs the same experiment cells as the Table 1 /
Table 2 drivers — identical seeding discipline, identical encode path —
but instead of reporting a single metric it returns the trained
:class:`~repro.serve.pipeline.TrainedPipeline`, ready for
:func:`~repro.serve.persist.save_model` and the serving loop.

Supported targets:

* the three JIGSAWS-like gesture tasks (``suturing``, ``knot_tying``,
  ``needle_passing``) — key–value record classification over 18 angular
  channels, exactly the :func:`~repro.experiments.classification.run_classification`
  pipeline;
* ``mars_express`` — single-feature (orbital mean anomaly) power
  regression, exactly the :func:`~repro.experiments.regression.run_mars_express`
  pipeline.  (The Beijing task binds three separately embedded features
  and has no single-embedding request form, so it is not servable
  through the generic engine yet.)

Held-out metrics are computed at train time and stored in the
pipeline's ``metadata``, so a saved model documents its own quality.
"""

from __future__ import annotations

import math
from typing import Union

from .._rng import ensure_rng
from ..datasets import JIGSAWS_TASKS, make_jigsaws_like
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import random_hypervectors
from ..learning.classifier import CentroidClassifier
from ..learning.regression import HDRegressor
from ..runtime import BatchEncoder, WorkerPool
from ..serve.pipeline import TrainedPipeline
from .classification import BASIS_KINDS, _value_embedding
from .config import ClassificationConfig, RegressionConfig
from .regression import _feature_embedding, _label_embedding, make_regression_split

__all__ = [
    "SERVABLE_TASKS",
    "train_pipeline",
    "train_classification_pipeline",
    "train_regression_pipeline",
]

TWO_PI = 2.0 * math.pi

#: Everything ``train_pipeline`` accepts as a task name.
SERVABLE_TASKS = tuple(JIGSAWS_TASKS) + ("mars_express",)


def train_classification_pipeline(
    task: str,
    basis_kind: str = "circular",
    config: ClassificationConfig | None = None,
    pool: WorkerPool | None = None,
) -> TrainedPipeline:
    """Train one JIGSAWS-like task into a servable pipeline.

    Mirrors :func:`~repro.experiments.classification.run_classification`
    (same RNG spawning, same dataset split, same fused-table encode and
    single-pass fit) with one deliberate difference: records are encoded
    with the pipeline's deterministic serve-time tie policy (``"zeros"``)
    rather than the experiment's shared random tie stream, so the
    held-out accuracy recorded in the metadata is measured on exactly
    the path that serves — what the artifact reports is what it
    delivers.

    Example
    -------
    >>> cfg = ClassificationConfig(dim=256, seed=7)
    >>> pipe = train_classification_pipeline("suturing", "circular", config=cfg)
    >>> pipe.kind, pipe.num_features
    ('classification', 18)
    >>> pipe.metadata["test_accuracy"] > 0.5
    True
    """
    if basis_kind not in BASIS_KINDS:
        raise InvalidParameterError(
            f"basis_kind must be one of {BASIS_KINDS}, got {basis_kind!r}"
        )
    config = config or ClassificationConfig()
    master = ensure_rng(config.seed)
    data_rng, basis_rng, key_rng, tie_rng = master.spawn(4)

    split = make_jigsaws_like(task=task, seed=data_rng)
    low, high = split.metadata.get("feature_range", (0.0, TWO_PI))
    embedding = _value_embedding(basis_kind, config, basis_rng, low=low, high=high)
    keys = random_hypervectors(split.num_channels, config.dim, seed=key_rng)

    # The serve-time encode policy, end to end: training corpus, held-out
    # metric and live requests all use the same deterministic encoding.
    encoder = BatchEncoder(keys, embedding, tie_break="zeros")
    train_hvs = encoder.encode(split.train_features, packed=True, pool=pool)
    test_hvs = encoder.encode(split.test_features, packed=True, pool=pool)

    classifier = CentroidClassifier(config.dim, seed=tie_rng)
    classifier.fit(train_hvs, split.train_labels.tolist())
    if config.refine_epochs:
        classifier.refine(
            train_hvs, split.train_labels.tolist(), epochs=config.refine_epochs
        )
    accuracy = classifier.score(test_hvs, split.test_labels.tolist())
    # Serve-time encoding uses the deterministic "zeros" tie policy:
    # a record's encoding must not depend on which micro-batch it
    # arrives in, which the shared-stream "random" policy cannot offer.
    return TrainedPipeline(
        kind="classification",
        model=classifier,
        embedding=embedding,
        keys=keys,
        tie_break="zeros",
        encode_seed=None,
        metadata={
            "task": task,
            "basis_kind": basis_kind,
            "dim": config.dim,
            "seed": config.seed,
            "num_train": int(split.train_features.shape[0]),
            "num_test": int(split.test_features.shape[0]),
            "test_accuracy": float(accuracy),
        },
    )


def train_regression_pipeline(
    basis_kind: str = "circular",
    config: RegressionConfig | None = None,
) -> TrainedPipeline:
    """Train the Mars Express power model into a servable pipeline.

    Mirrors :func:`~repro.experiments.regression.run_mars_express` and
    records the held-out MSE in the pipeline metadata.

    Example
    -------
    >>> cfg = RegressionConfig(dim=256, seed=7)
    >>> pipe = train_regression_pipeline("circular", config=cfg)
    >>> pipe.kind, pipe.num_features
    ('regression', 1)
    >>> pipe.metadata["test_mse"] >= 0.0
    True
    """
    if basis_kind not in BASIS_KINDS:
        raise InvalidParameterError(
            f"basis_kind must be one of {BASIS_KINDS}, got {basis_kind!r}"
        )
    config = config or RegressionConfig()
    master = ensure_rng(config.seed)
    data_rng, anomaly_rng, label_rng, tie_rng = master.spawn(4)
    del data_rng  # the split comes from make_regression_split (same stream)

    split = make_regression_split("mars_express", config)
    anomaly_embedding = _feature_embedding(
        basis_kind, config.anomaly_levels, TWO_PI, config, anomaly_rng
    )
    label_embedding = _label_embedding(split, config, label_rng)

    model = HDRegressor(
        label_embedding, seed=tie_rng, decode=config.decode, model=config.model
    )
    model.fit(
        anomaly_embedding.encode_packed(split.train_features[:, 0]), split.train_labels
    )
    mse = model.score(
        anomaly_embedding.encode_packed(split.test_features[:, 0]), split.test_labels
    )
    return TrainedPipeline(
        kind="regression",
        model=model,
        embedding=anomaly_embedding,
        keys=None,
        tie_break="zeros",
        encode_seed=None,
        metadata={
            "task": "mars_express",
            "basis_kind": basis_kind,
            "dim": config.dim,
            "seed": config.seed,
            "num_train": int(split.train_features.shape[0]),
            "num_test": int(split.test_features.shape[0]),
            "test_mse": float(mse),
        },
    )


def train_pipeline(
    task: str,
    basis_kind: str = "circular",
    config: Union[ClassificationConfig, RegressionConfig, None] = None,
    pool: WorkerPool | None = None,
) -> TrainedPipeline:
    """Train any servable task into a pipeline, dispatching on ``task``.

    ``task`` is a JIGSAWS-like gesture task (classification) or
    ``"mars_express"`` (regression); see :data:`SERVABLE_TASKS`.

    Example
    -------
    >>> pipe = train_pipeline("mars_express", config=RegressionConfig(dim=128, seed=1))
    >>> pipe.metadata["task"]
    'mars_express'
    """
    if task == "mars_express":
        if config is not None and not isinstance(config, RegressionConfig):
            raise InvalidParameterError("mars_express needs a RegressionConfig")
        return train_regression_pipeline(basis_kind, config=config)
    if task in JIGSAWS_TASKS:
        if config is not None and not isinstance(config, ClassificationConfig):
            raise InvalidParameterError(f"{task} needs a ClassificationConfig")
        return train_classification_pipeline(task, basis_kind, config=config, pool=pool)
    raise InvalidParameterError(
        f"unknown task {task!r}; expected one of {SERVABLE_TASKS}"
    )
