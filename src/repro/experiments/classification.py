"""The Table 1 experiment: surgical-gesture classification.

Pipeline (Section 6.1 of the paper):

1. generate a JIGSAWS-like task split (train on surgeon "D", test on the
   other seven),
2. quantise each of the 18 angular channels onto an ``m``-point grid and
   encode each sample as ``⊕_{i=1}^{18} K_i ⊗ V_i`` with random key
   hypervectors ``K_i`` and value hypervectors ``V_i`` drawn from the
   basis set under test (random / level / circular),
3. train the centroid classifier and report test accuracy.

For circular value bases the grid is circular (period 2π, no duplicated
endpoint); for random/level bases it is the paper's linear ξ-grid over
``[0, 2π]`` — that *is* the baseline treatment whose failure mode the
paper demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Mapping

import numpy as np

from .._rng import ensure_rng
from ..basis import CircularDiscretizer, Embedding, LinearDiscretizer, make_basis
from ..datasets import JIGSAWS_TASKS, ClassificationSplit, make_jigsaws_like
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import random_hypervectors
from ..hdc.encoders import encode_keyvalue_records
from ..learning.classifier import CentroidClassifier
from ..runtime import (
    ArtifactStore,
    BatchEncoder,
    WorkerPool,
    fit_classifier_sharded,
    score_classifier_sharded,
)
from .config import ClassificationConfig

__all__ = [
    "BASIS_KINDS",
    "ClassificationResult",
    "encode_angular_records",
    "run_classification",
    "run_table1",
    "table1_cache_params",
]

#: The basis sets compared in Table 1, in column order.
BASIS_KINDS = ("random", "level", "circular")

TWO_PI = 2.0 * math.pi


@dataclass(frozen=True)
class ClassificationResult:
    """Outcome of one (task, basis) classification run."""

    task: str
    basis_kind: str
    accuracy: float
    num_train: int
    num_test: int
    config: ClassificationConfig


def _value_embedding(
    basis_kind: str,
    config: ClassificationConfig,
    seed,
    low: float = 0.0,
    high: float = TWO_PI,
) -> Embedding:
    """Value embedding over ``[low, high]`` for the basis under test.

    Circular bases wrap the range into a full period (the paper's
    circular treatment); random/level bases quantise it as a plain
    interval (the baseline treatment).
    """
    r = config.circular_r if basis_kind == "circular" else 0.0
    basis = make_basis(basis_kind, config.levels, config.dim, r=r, seed=seed)
    if basis_kind == "circular":
        discretizer = CircularDiscretizer(config.levels, low=low, period=high - low)
    else:
        discretizer = LinearDiscretizer(low, high, config.levels, clip=True)
    return Embedding(basis, discretizer)


def encode_angular_records(
    features: np.ndarray,
    keys: np.ndarray,
    embedding: Embedding,
    tie_break: str = "random",
    seed=None,
) -> np.ndarray:
    """Encode ``(n, k)`` angular samples as key–value records.

    ``keys`` holds one random hypervector per channel; every channel
    shares the value embedding (all channels live on the same circle).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise InvalidParameterError(f"expected (n, k) features, got {features.shape}")
    if keys.shape[0] != features.shape[1]:
        raise InvalidParameterError(
            f"got {keys.shape[0]} keys for {features.shape[1]} channels"
        )
    indices = embedding.indices(features.ravel()).reshape(features.shape)
    return encode_keyvalue_records(
        keys, indices, embedding.basis.vectors, tie_break=tie_break, seed=seed
    )


def run_classification(
    task: str,
    basis_kind: str,
    config: ClassificationConfig | None = None,
    split: ClassificationSplit | None = None,
    pool: WorkerPool | None = None,
) -> ClassificationResult:
    """Run one cell of Table 1 and return its accuracy.

    ``split`` can be supplied to reuse one generated dataset across basis
    kinds (as the paper does — the data does not change between columns);
    otherwise it is generated from the config seed.

    ``pool`` optionally shards the encode / train / predict stages of
    *this one cell* over a :class:`~repro.runtime.pool.WorkerPool`; the
    accuracy is bit-identical to the serial run for any worker count
    (the runtime fans out only the pure count phases and merges them in
    a fixed order).

    Example
    -------
    >>> cfg = ClassificationConfig(dim=256, seed=7)
    >>> cell = run_classification("suturing", "circular", config=cfg)
    >>> cell.num_train, cell.num_test
    (300, 2100)
    >>> 0.0 <= cell.accuracy <= 1.0
    True
    """
    if basis_kind not in BASIS_KINDS:
        raise InvalidParameterError(
            f"basis_kind must be one of {BASIS_KINDS}, got {basis_kind!r}"
        )
    config = config or ClassificationConfig()
    master = ensure_rng(config.seed)
    data_rng, basis_rng, key_rng, tie_rng = master.spawn(4)

    if split is None:
        split = make_jigsaws_like(task=task, seed=data_rng)
    elif task != split.metadata.get("task", task):
        raise InvalidParameterError(
            f"supplied split is for task {split.metadata.get('task')!r}, not {task!r}"
        )

    low, high = split.metadata.get("feature_range", (0.0, TWO_PI))
    embedding = _value_embedding(basis_kind, config, basis_rng, low=low, high=high)
    keys = random_hypervectors(split.num_channels, config.dim, seed=key_rng)

    # Whole-split batched encoding (fused key⊗basis table, packed output);
    # bit-identical to the per-call encoder for the same chunk size.
    encoder = BatchEncoder(keys, embedding)
    train_hvs = encoder.encode(split.train_features, seed=tie_rng, packed=True, pool=pool)
    test_hvs = encoder.encode(split.test_features, seed=tie_rng, packed=True, pool=pool)

    classifier = CentroidClassifier(config.dim, seed=tie_rng)
    if pool is None or pool.serial:
        classifier.fit(train_hvs, split.train_labels.tolist())
    else:
        fit_classifier_sharded(classifier, train_hvs, split.train_labels.tolist(), pool)
    if config.refine_epochs:
        classifier.refine(
            train_hvs, split.train_labels.tolist(), epochs=config.refine_epochs
        )
    if pool is None or pool.serial:
        acc = classifier.score(test_hvs, split.test_labels.tolist())
    else:
        acc = score_classifier_sharded(
            classifier, test_hvs, split.test_labels.tolist(), pool
        )
    return ClassificationResult(
        task=task,
        basis_kind=basis_kind,
        accuracy=acc,
        num_train=int(split.train_features.shape[0]),
        num_test=int(split.test_features.shape[0]),
        config=config,
    )


def _table1_cell(
    task: str, kind: str, config: ClassificationConfig, split: ClassificationSplit
) -> float:
    """One (task, basis) cell — module-level so process pools can pickle it."""
    return run_classification(task, kind, config=config, split=split).accuracy


def table1_cache_params(
    config: ClassificationConfig,
    tasks: tuple[str, ...],
    basis_kinds: tuple[str, ...],
) -> dict:
    """The content-hash key identifying one Table 1 configuration."""
    return {
        "config": asdict(config),
        "tasks": list(tasks),
        "basis_kinds": list(basis_kinds),
    }


def run_table1(
    config: ClassificationConfig | None = None,
    tasks: tuple[str, ...] = tuple(JIGSAWS_TASKS),
    basis_kinds: tuple[str, ...] = BASIS_KINDS,
    workers: int = 1,
    backend: str = "thread",
    store: ArtifactStore | None = None,
) -> Mapping[str, Mapping[str, float]]:
    """Regenerate Table 1: accuracy per (task, basis kind).

    Returns ``{task: {basis_kind: accuracy}}`` with one shared dataset per
    task so the basis set is the only varying factor.

    Parameters
    ----------
    workers, backend:
        Fan the independent (task, basis) cells out over a
        :class:`~repro.runtime.pool.WorkerPool`.  Every cell derives its
        randomness from ``config.seed`` alone, so the table is
        **bit-identical to the serial run for any worker count**.
    store:
        Optional :class:`~repro.runtime.artifacts.ArtifactStore`; when
        given, a previous run with an identical configuration is served
        from the cache (logged, nothing recomputed) and fresh results
        are persisted.
    """
    config = config or ClassificationConfig()
    params = table1_cache_params(config, tuple(tasks), tuple(basis_kinds))
    if store is not None:
        cached = store.load("table1", params)
        if cached is not None:
            return cached

    splits = {}
    for task in tasks:
        data_rng = ensure_rng(config.seed).spawn(4)[0]
        splits[task] = make_jigsaws_like(task=task, seed=data_rng)
    cells = [(task, kind, config, splits[task]) for task in tasks for kind in basis_kinds]
    with WorkerPool(workers=workers, backend=backend) as pool:
        accuracies = pool.starmap(_table1_cell, cells)

    results: dict[str, dict[str, float]] = {task: {} for task in tasks}
    for (task, kind, _, _), acc in zip(cells, accuracies):
        results[task][kind] = acc
    if store is not None:
        store.store("table1", params, results)
    return results
