"""Shared experiment configuration.

One dataclass per experimental family, with defaults matching the paper
where it specifies them (``d ≈ 10,000``; ``r = 0.1`` for Table 1's
circular sets; ``r = 0.01`` for Table 2's) and documented choices where
it does not (grid sizes, label levels).  The ``scaled`` constructor makes
cheap variants for tests and quick benchmark runs without touching the
experiment logic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import InvalidParameterError

__all__ = ["ClassificationConfig", "RegressionConfig", "DEFAULT_DIMENSION"]

#: The paper's hyperspace dimensionality.
DEFAULT_DIMENSION = 10_000


@dataclass(frozen=True)
class ClassificationConfig:
    """Configuration of the Table 1 (JIGSAWS-like) experiments.

    Attributes
    ----------
    dim:
        Hyperspace dimensionality.
    levels:
        Size of the value basis set used to quantise each angular channel
        (the paper does not state its choice; 12 — a 30° resolution —
        was calibrated together with the surrogate dataset, see
        EXPERIMENTS.md).
    circular_r:
        The ``r`` used for circular sets ("The circular hypervectors have
        r = 0.1" — Table 1 caption).
    seed:
        Master seed; dataset, basis and tie-breaking streams are spawned
        from it.
    refine_epochs:
        Online-refinement epochs (0 = the paper's single-pass training).
    """

    dim: int = DEFAULT_DIMENSION
    levels: int = 12
    circular_r: float = 0.1
    seed: int = 2023
    refine_epochs: int = 0

    def __post_init__(self) -> None:
        if self.dim < 8:
            raise InvalidParameterError(f"dim too small: {self.dim}")
        if self.levels < 2:
            raise InvalidParameterError(f"levels must be ≥ 2, got {self.levels}")
        if not 0.0 <= self.circular_r <= 1.0:
            raise InvalidParameterError(f"circular_r must lie in [0, 1], got {self.circular_r}")
        if self.refine_epochs < 0:
            raise InvalidParameterError("refine_epochs must be non-negative")

    def scaled(self, dim: int) -> "ClassificationConfig":
        """Same experiment at a different dimensionality (for fast runs)."""
        return replace(self, dim=dim)


@dataclass(frozen=True)
class RegressionConfig:
    """Configuration of the Table 2 / Figure 7 regression experiments.

    Attributes
    ----------
    dim:
        Hyperspace dimensionality.
    label_levels:
        Size of the level basis encoding the label (temperature / power).
    day_levels, hour_levels:
        Grid sizes for Beijing's day-of-year and hour-of-day features.
    anomaly_levels:
        Grid size for Mars Express's mean anomaly.
    circular_r:
        "The circular hypervectors have r = 0.01" — Table 2 caption.
    seed:
        Master seed.
    decode:
        Label decode mode of :class:`~repro.learning.regression.HDRegressor`.
    model:
        ``"integer"`` (unquantised accumulator, the torchhd-style practice
        and this reproduction's default — see EXPERIMENTS.md) or
        ``"binary"`` (the paper's formal majority bundle; compared in the
        ablation benchmark).
    """

    dim: int = DEFAULT_DIMENSION
    label_levels: int = 128
    day_levels: int = 365
    hour_levels: int = 24
    anomaly_levels: int = 720
    circular_r: float = 0.01
    seed: int = 2023
    decode: str = "argmin"
    model: str = "integer"

    def __post_init__(self) -> None:
        if self.dim < 8:
            raise InvalidParameterError(f"dim too small: {self.dim}")
        for name in ("label_levels", "day_levels", "hour_levels", "anomaly_levels"):
            if getattr(self, name) < 2:
                raise InvalidParameterError(f"{name} must be ≥ 2")
        if not 0.0 <= self.circular_r <= 1.0:
            raise InvalidParameterError(f"circular_r must lie in [0, 1], got {self.circular_r}")
        if self.decode not in ("argmin", "weighted"):
            raise InvalidParameterError(f"unknown decode mode {self.decode!r}")
        if self.model not in ("binary", "integer"):
            raise InvalidParameterError(f"unknown model mode {self.model!r}")

    def scaled(self, dim: int) -> "RegressionConfig":
        """Same experiment at a different dimensionality (for fast runs)."""
        return replace(self, dim=dim)
