"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from numpy, etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionMismatchError",
    "InvalidHypervectorError",
    "InvalidParameterError",
    "EncodingDomainError",
    "EmptyModelError",
    "ModelFormatError",
    "CalibrationError",
    "BackpressureError",
    "ClusterError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DimensionMismatchError(ReproError, ValueError):
    """Raised when hypervectors of incompatible dimensionality are combined.

    HDC arithmetic is element-wise, so every operand of ``bind``, ``bundle``
    and distance computations must share its trailing (dimension) axis.
    """

    def __init__(self, expected: int, received: int, context: str = "") -> None:
        self.expected = expected
        self.received = received
        suffix = f" in {context}" if context else ""
        super().__init__(
            f"hypervector dimension mismatch{suffix}: "
            f"expected {expected}, received {received}"
        )


class InvalidHypervectorError(ReproError, ValueError):
    """Raised when an array is not a valid hypervector for the target space.

    For the binary spatter code (BSC) space used throughout the paper this
    means the array does not contain exclusively ``{0, 1}`` entries.
    """


class InvalidParameterError(ReproError, ValueError):
    """Raised when a constructor or function parameter is out of range.

    Examples: a non-positive dimension, a basis-set size below two, an
    ``r``-value outside ``[0, 1]``, or an odd circular set size where an
    even one is required.
    """


class EncodingDomainError(ReproError, ValueError):
    """Raised when a value lies outside the domain of a discretizer.

    Linear discretizers cover a closed interval ``[low, high]``; circular
    discretizers accept any real number (angles wrap), so they never raise
    this error.
    """


class EmptyModelError(ReproError, RuntimeError):
    """Raised when inference is attempted on a model with no training data."""


class ModelFormatError(ReproError, ValueError):
    """Raised when a persisted model file cannot be decoded.

    Covers unreadable containers, missing or malformed manifests, format
    versions newer than this library understands, and objects whose type
    has no registered serializer (see :mod:`repro.serve.persist`).
    """


class CalibrationError(ReproError, ValueError):
    """Raised when a calibration artifact or workload spec is unusable.

    Covers unreadable files, schema versions this library does not
    understand, malformed knob values, and workload specs whose target
    or budget fields are missing or out of range
    (see :mod:`repro.tuning`).
    """


class BackpressureError(ReproError, RuntimeError):
    """Raised when a serving queue rejects a request under admission control.

    The serving tier bounds every per-model request queue; a submit
    against a full queue fails fast with this error instead of growing
    the queue without limit.  The HTTP front end maps it to a
    ``429 Too Many Requests`` response (see :mod:`repro.serve.server`).
    """


class ClusterError(ReproError, RuntimeError):
    """Raised when a distributed ingest run cannot be completed.

    Covers workers that exhaust their restart budget, workers that
    disagree about the stream length, and protocol violations on the
    coordinator's pipes (see :mod:`repro.cluster`).  A transient worker
    crash is *not* an error — the coordinator restarts the worker from
    its chunk cursor and the run continues.
    """
