"""Random-number-generator plumbing shared by the whole library.

Every stochastic component in :mod:`repro` accepts a ``seed`` argument that
may be ``None``, an integer, or a :class:`numpy.random.Generator`.  This
module centralises the coercion so the behaviour is identical everywhere:

* ``None``      -> a fresh OS-seeded generator (non-reproducible),
* ``int``       -> ``numpy.random.default_rng(seed)`` (reproducible),
* ``Generator`` -> used as-is (caller controls the stream).

Passing a ``Generator`` lets several components share one stream, which is
how the experiment drivers guarantee bit-for-bit reproducibility of entire
tables from a single seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn_rngs"]

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged.

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses :meth:`numpy.random.Generator.spawn` so the child streams are
    statistically independent regardless of how many values each consumes.
    Useful when an experiment needs separate streams for, e.g., the basis
    set, the dataset and the tie-breaking policy, so that changing one
    component does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return ensure_rng(seed).spawn(count)
