"""repro — Basis-hypervectors for learning from circular data in HDC.

A from-scratch reproduction of *"An Extension to Basis-Hypervectors for
Learning from Circular Data in Hyperdimensional Computing"* (Nunes,
Heddes, Givargis, Nicolau — DAC 2023), including the complete HDC
substrate it builds on.

Quickstart
----------
>>> from repro import CircularBasis, LevelBasis, RandomBasis
>>> hours = CircularBasis(size=24, dim=10_000, seed=0)
>>> emb = hours.circular_embedding(period=24.0)
>>> hv_23, hv_0 = emb.encode(23.0), emb.encode(0.0)
>>> # 11 pm and midnight stay similar — no endpoint tear:
>>> bool((hv_23 != hv_0).mean() < 0.1)
True

Package map
-----------
* :mod:`repro.hdc` — hypervectors, bind/bundle/permute, item memory,
  compound encoders (the Section 2 substrate),
* :mod:`repro.basis` — random / level / circular / scatter basis sets
  (the paper's contributions),
* :mod:`repro.markov` — the Section 4.2 absorption-time machinery,
* :mod:`repro.stats` — directional statistics,
* :mod:`repro.info` — Section 4.1 information-content analysis,
* :mod:`repro.learning` — HDC classifier and regressor, metrics, baselines,
* :mod:`repro.datasets` — synthetic workloads (JIGSAWS / Beijing / Mars
  Express surrogates),
* :mod:`repro.hashing` — the hyperdimensional consistent-hashing system
  circular-hypervectors originate from,
* :mod:`repro.runtime` — parallel experiment runtime: batched encoding,
  sharded execution, artifact caching,
* :mod:`repro.streaming` — out-of-core chunked reducer: chunk sources,
  chunking-invariant encoding, streamed training with checkpoints,
* :mod:`repro.experiments` — one driver per table/figure,
* :mod:`repro.analysis` — similarity matrices, figure data, reporting.
"""

from .basis import (
    BasisSet,
    CircularBasis,
    CircularDiscretizer,
    Embedding,
    LegacyLevelBasis,
    LevelBasis,
    LinearDiscretizer,
    RandomBasis,
    ScatterBasis,
    make_basis,
)
from .exceptions import (
    DimensionMismatchError,
    EmptyModelError,
    EncodingDomainError,
    InvalidHypervectorError,
    InvalidParameterError,
    ModelFormatError,
    ReproError,
)
from .hdc import (
    BSCSpace,
    BundleAccumulator,
    ItemMemory,
    MAPSpace,
    PackedBSCSpace,
    PackedHV,
    bind,
    bundle,
    hamming_distance,
    permute,
    random_hypervector,
    random_hypervectors,
    similarity,
)
from .learning import CentroidClassifier, HDRegressor
from .runtime import ArtifactStore, BatchEncoder, WorkerPool
from .serve import (
    InferenceEngine,
    OnlineLearner,
    TrainedPipeline,
    load_model,
    save_model,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # basis sets
    "BasisSet",
    "Embedding",
    "RandomBasis",
    "LevelBasis",
    "LegacyLevelBasis",
    "CircularBasis",
    "ScatterBasis",
    "make_basis",
    "LinearDiscretizer",
    "CircularDiscretizer",
    # HDC substrate
    "BSCSpace",
    "PackedBSCSpace",
    "MAPSpace",
    "PackedHV",
    "BundleAccumulator",
    "ItemMemory",
    "bind",
    "bundle",
    "permute",
    "hamming_distance",
    "similarity",
    "random_hypervector",
    "random_hypervectors",
    # learning
    "CentroidClassifier",
    "HDRegressor",
    # runtime
    "ArtifactStore",
    "BatchEncoder",
    "WorkerPool",
    # serving
    "save_model",
    "load_model",
    "TrainedPipeline",
    "InferenceEngine",
    "OnlineLearner",
    # errors
    "ReproError",
    "DimensionMismatchError",
    "InvalidHypervectorError",
    "InvalidParameterError",
    "EncodingDomainError",
    "EmptyModelError",
    "ModelFormatError",
]
