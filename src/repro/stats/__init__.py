"""Directional-statistics substrate (Section 5 background).

Circular data require their own statistical toolkit — the subdiscipline
the paper cites as directional statistics [29, 32].  This subpackage
implements the pieces the reproduction needs: angle wrapping and
time-to-angle conversion, circular distances (including the paper's ρ),
descriptive statistics (circular mean/variance), the von Mises and
wrapped-normal distributions, and circular–linear association measures.
"""

from .angles import (
    TWO_PI,
    angle_to_time,
    degrees_to_radians,
    radians_to_degrees,
    time_to_angle,
    wrap_angle,
    wrap_angle_signed,
)
from .correlation import circular_circular_correlation, circular_linear_correlation
from .descriptive import (
    circular_mean,
    circular_range,
    circular_std,
    circular_variance,
    resultant_length,
)
from .distance import arc_distance, chord_distance, circular_distance
from .distributions import VonMises, WrappedNormal

__all__ = [
    "TWO_PI",
    "wrap_angle",
    "wrap_angle_signed",
    "time_to_angle",
    "angle_to_time",
    "degrees_to_radians",
    "radians_to_degrees",
    "circular_distance",
    "arc_distance",
    "chord_distance",
    "circular_mean",
    "resultant_length",
    "circular_variance",
    "circular_std",
    "circular_range",
    "VonMises",
    "WrappedNormal",
    "circular_linear_correlation",
    "circular_circular_correlation",
]
