"""Circular probability distributions: von Mises and wrapped normal.

The von Mises distribution is the circular analogue of the Gaussian (Gao
et al. [10] in the paper apply it to seasonality of disease onset); the
synthetic JIGSAWS generator uses it for angular measurement noise.  The
wrapped normal is provided as the second classical choice and as a
cross-check (for matching dispersion the two are nearly indistinguishable).
"""

from __future__ import annotations

import math

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError

__all__ = ["VonMises", "WrappedNormal"]

TWO_PI = 2.0 * math.pi


def _log_bessel_i0(kappa: float) -> float:
    """``ln I₀(κ)`` via numpy's exponentially scaled Bessel when available.

    numpy has no Bessel functions; we use the classic series for small
    ``κ`` and the asymptotic expansion for large ``κ``.  Accuracy is far
    beyond what the pdf tests require (< 1e-10 relative).
    """
    if kappa < 0:
        raise InvalidParameterError(f"kappa must be non-negative, got {kappa}")
    if kappa < 100.0:
        # Power series: I0(x) = Σ (x/2)^{2k} / (k!)²; converges well below
        # float64 overflow for x < 100 (peak term ≈ e^x ≈ 2.7e43).
        term = 1.0
        total = 1.0
        k = 0
        x2 = (kappa / 2.0) ** 2
        while term > 1e-18 * total:
            k += 1
            term *= x2 / (k * k)
            total += term
        return math.log(total)
    # Asymptotic expansion with the u_k = Π(2j−1)² / (k! 8^k) coefficients;
    # at x ≥ 100 the truncation error is below 1e-11 relative.
    inv = 1.0 / kappa
    series = (
        1.0
        + inv / 8.0
        + 9.0 * inv**2 / 128.0
        + 225.0 * inv**3 / 3072.0
        + 11025.0 * inv**4 / 98304.0
        + 893025.0 * inv**5 / 3932160.0
    )
    return kappa - 0.5 * math.log(TWO_PI * kappa) + math.log(series)


class VonMises:
    """Von Mises distribution ``VM(μ, κ)`` on the circle.

    Parameters
    ----------
    mu:
        Mean direction (radians; stored wrapped to ``[0, 2π)``).
    kappa:
        Concentration ``κ ≥ 0``; ``κ = 0`` is the uniform distribution,
        large ``κ`` approaches a Gaussian of variance ``1/κ``.
    """

    def __init__(self, mu: float = 0.0, kappa: float = 1.0) -> None:
        if not math.isfinite(mu):
            raise InvalidParameterError(f"mu must be finite, got {mu}")
        if kappa < 0 or not math.isfinite(kappa):
            raise InvalidParameterError(f"kappa must be non-negative, got {kappa}")
        self.mu = float(np.mod(mu, TWO_PI))
        self.kappa = float(kappa)

    def pdf(self, theta: np.ndarray | float) -> np.ndarray:
        """Density ``exp(κ cos(θ − μ)) / (2π I₀(κ))``."""
        arr = np.asarray(theta, dtype=np.float64)
        log_norm = math.log(TWO_PI) + _log_bessel_i0(self.kappa)
        return np.exp(self.kappa * np.cos(arr - self.mu) - log_norm)

    def sample(self, size: int | tuple = 1, seed: SeedLike = None) -> np.ndarray:
        """Draw samples in ``[0, 2π)`` (Best–Fisher via numpy's generator)."""
        rng = ensure_rng(seed)
        if self.kappa == 0.0:
            return rng.uniform(0.0, TWO_PI, size=size)
        return np.mod(rng.vonmises(self.mu, self.kappa, size=size), TWO_PI)

    def expected_resultant_length(self) -> float:
        """``R̄ = I₁(κ)/I₀(κ)``, via numerical differentiation of ``ln I₀``.

        Uses the identity ``d ln I₀(κ)/dκ = I₁(κ)/I₀(κ)`` with a central
        difference — adequate for the test tolerances and dependency-free.
        """
        if self.kappa == 0.0:
            return 0.0
        h = max(1e-6, self.kappa * 1e-7)
        return float(
            (_log_bessel_i0(self.kappa + h) - _log_bessel_i0(self.kappa - h)) / (2 * h)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VonMises(mu={self.mu:.4f}, kappa={self.kappa:.4f})"


class WrappedNormal:
    """Wrapped normal distribution: ``θ = (μ + σZ) mod 2π`` with ``Z ~ N(0,1)``."""

    def __init__(self, mu: float = 0.0, sigma: float = 1.0) -> None:
        if not math.isfinite(mu):
            raise InvalidParameterError(f"mu must be finite, got {mu}")
        if sigma <= 0 or not math.isfinite(sigma):
            raise InvalidParameterError(f"sigma must be positive, got {sigma}")
        self.mu = float(np.mod(mu, TWO_PI))
        self.sigma = float(sigma)

    def pdf(self, theta: np.ndarray | float, terms: int = 32) -> np.ndarray:
        """Density by truncated wrapping series ``Σ_k N(θ + 2πk; μ, σ²)``."""
        arr = np.asarray(theta, dtype=np.float64)
        ks = np.arange(-terms, terms + 1, dtype=np.float64)
        shifted = arr[..., None] - self.mu + TWO_PI * ks
        gauss = np.exp(-0.5 * (shifted / self.sigma) ** 2)
        return gauss.sum(axis=-1) / (self.sigma * math.sqrt(TWO_PI))

    def sample(self, size: int | tuple = 1, seed: SeedLike = None) -> np.ndarray:
        """Draw samples in ``[0, 2π)`` by wrapping a normal draw."""
        rng = ensure_rng(seed)
        return np.mod(rng.normal(self.mu, self.sigma, size=size), TWO_PI)

    def expected_resultant_length(self) -> float:
        """``R̄ = exp(−σ²/2)`` (exact for the wrapped normal)."""
        return float(math.exp(-0.5 * self.sigma**2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WrappedNormal(mu={self.mu:.4f}, sigma={self.sigma:.4f})"
