"""Distance measures on the circle.

The paper adopts Lund's normalized circular distance (Section 5)

``ρ(α, β) = (1 − cos(α − β)) / 2  ∈ [0, 1]``

as the ground-truth notion circular-hypervectors should mirror:
``E[δ(C_i, C_j)] = ρ(θ_i, θ_j) / 2``.  Alongside it we provide the arc
(geodesic) distance, which is the metric the two-phase construction
realises exactly (see :mod:`repro.basis.circular`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["circular_distance", "arc_distance", "chord_distance"]


def circular_distance(alpha: np.ndarray | float, beta: np.ndarray | float) -> np.ndarray:
    """Lund's normalized circular distance ``ρ(α, β) = (1 − cos(α − β))/2``.

    Ranges over ``[0, 1]``: 0 for identical directions, 1 for opposite
    ones.  Equivalent to half the squared chord length between the two
    points on the unit circle (``ρ = |e^{iα} − e^{iβ}|² / 4``).
    """
    a = np.asarray(alpha, dtype=np.float64)
    b = np.asarray(beta, dtype=np.float64)
    return (1.0 - np.cos(a - b)) / 2.0


def arc_distance(alpha: np.ndarray | float, beta: np.ndarray | float) -> np.ndarray:
    """Geodesic (shortest-arc) angular separation in radians, in ``[0, π]``."""
    a = np.asarray(alpha, dtype=np.float64)
    b = np.asarray(beta, dtype=np.float64)
    diff = np.abs(np.mod(a - b, 2.0 * math.pi))
    return np.minimum(diff, 2.0 * math.pi - diff)


def chord_distance(alpha: np.ndarray | float, beta: np.ndarray | float) -> np.ndarray:
    """Euclidean chord length between two points on the unit circle, in ``[0, 2]``."""
    return 2.0 * np.sin(arc_distance(alpha, beta) / 2.0)
