"""Angle wrapping and unit conversions for circular data.

Circular data are "derived from the measurement of directions, usually
expressed as an angle from a fixed reference direction" (Section 1), and
commonly arise from periodic time measurements — hours of a day, days of a
year, orbital anomalies.  These helpers normalise all of them to radians.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "TWO_PI",
    "wrap_angle",
    "wrap_angle_signed",
    "time_to_angle",
    "angle_to_time",
    "degrees_to_radians",
    "radians_to_degrees",
]

TWO_PI = 2.0 * math.pi


def wrap_angle(theta: np.ndarray | float) -> np.ndarray:
    """Wrap angle(s) into the fundamental interval ``[0, 2π)``.

    Guards against the floating-point edge where ``mod`` of a tiny
    negative angle rounds to exactly ``2π`` (outside the half-open
    interval).
    """
    wrapped = np.mod(np.asarray(theta, dtype=np.float64), TWO_PI)
    return np.where(wrapped >= TWO_PI, 0.0, wrapped)


def wrap_angle_signed(theta: np.ndarray | float) -> np.ndarray:
    """Wrap angle(s) into the signed interval ``[−π, π)``."""
    shifted = np.mod(np.asarray(theta, dtype=np.float64) + math.pi, TWO_PI)
    shifted = np.where(shifted >= TWO_PI, 0.0, shifted)
    return shifted - math.pi


def time_to_angle(value: np.ndarray | float, period: float) -> np.ndarray:
    """Convert a periodic time measurement to an angle in ``[0, 2π)``.

    ``time_to_angle(hour, 24)`` maps hours of a day onto the circle;
    ``time_to_angle(day_of_year, 365.2425)`` maps days of a year — the
    "proxies of angular values" the Beijing experiment builds on
    (Section 6.2).
    """
    if period <= 0 or not math.isfinite(period):
        raise InvalidParameterError(f"period must be positive and finite, got {period}")
    return wrap_angle(np.asarray(value, dtype=np.float64) / period * TWO_PI)


def angle_to_time(theta: np.ndarray | float, period: float) -> np.ndarray:
    """Inverse of :func:`time_to_angle`: angle back to ``[0, period)``."""
    if period <= 0 or not math.isfinite(period):
        raise InvalidParameterError(f"period must be positive and finite, got {period}")
    return wrap_angle(theta) / TWO_PI * period


def degrees_to_radians(degrees: np.ndarray | float) -> np.ndarray:
    """Degrees → radians (vectorised)."""
    return np.asarray(degrees, dtype=np.float64) * math.pi / 180.0


def radians_to_degrees(radians: np.ndarray | float) -> np.ndarray:
    """Radians → degrees (vectorised)."""
    return np.asarray(radians, dtype=np.float64) * 180.0 / math.pi
