"""Descriptive directional statistics (Mardia & Jupp; Fisher).

The arithmetic mean is meaningless for angles (the "mean" of 1° and 359°
is not 180°); directional statistics instead embeds angles on the unit
circle and works with the resultant vector.  These estimators are the
standard toolkit the synthetic-dataset generators and tests rely on.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "circular_mean",
    "resultant_length",
    "circular_variance",
    "circular_std",
    "circular_range",
]


def _angles(theta: np.ndarray | list, weights: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(theta, dtype=np.float64)
    if arr.size == 0:
        raise InvalidParameterError("need at least one angle")
    if weights is None:
        w = np.ones_like(arr)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != arr.shape:
            raise InvalidParameterError(
                f"weights shape {w.shape} must match angles shape {arr.shape}"
            )
        if np.any(w < 0) or w.sum() == 0:
            raise InvalidParameterError("weights must be non-negative with positive sum")
    return arr, w


def circular_mean(theta: np.ndarray | list, weights: np.ndarray | None = None) -> float:
    """Mean direction: the angle of the (weighted) resultant vector.

    Undefined when the resultant vanishes (perfectly balanced angles);
    in that degenerate case the implementation returns the ``arctan2``
    of a zero vector, which numpy defines as 0.
    """
    arr, w = _angles(theta, weights)
    sin_sum = float(np.sum(w * np.sin(arr)))
    cos_sum = float(np.sum(w * np.cos(arr)))
    return float(np.mod(np.arctan2(sin_sum, cos_sum), 2.0 * np.pi))


def resultant_length(theta: np.ndarray | list, weights: np.ndarray | None = None) -> float:
    """Mean resultant length ``R̄ ∈ [0, 1]``: 1 = all aligned, 0 = balanced."""
    arr, w = _angles(theta, weights)
    total = float(np.sum(w))
    sin_sum = float(np.sum(w * np.sin(arr)))
    cos_sum = float(np.sum(w * np.cos(arr)))
    return float(np.hypot(sin_sum, cos_sum) / total)


def circular_variance(theta: np.ndarray | list, weights: np.ndarray | None = None) -> float:
    """Circular variance ``V = 1 − R̄ ∈ [0, 1]``."""
    return 1.0 - resultant_length(theta, weights)


def circular_std(theta: np.ndarray | list, weights: np.ndarray | None = None) -> float:
    """Circular standard deviation ``√(−2 ln R̄)`` (radians).

    Diverges as the sample approaches a balanced configuration
    (``R̄ → 0``); equals 0 for perfectly aligned angles.
    """
    r = resultant_length(theta, weights)
    if r <= 1e-12:  # balanced up to floating-point residue
        return float("inf")
    return float(np.sqrt(-2.0 * np.log(r)))


def circular_range(theta: np.ndarray | list) -> float:
    """Smallest arc containing every sample angle (radians, ``[0, 2π)``).

    Computed by sorting the wrapped angles and subtracting the largest
    gap between consecutive points from the full circle.
    """
    arr = np.sort(np.mod(np.asarray(theta, dtype=np.float64), 2.0 * np.pi))
    if arr.size == 0:
        raise InvalidParameterError("need at least one angle")
    if arr.size == 1:
        return 0.0
    gaps = np.diff(arr)
    wrap_gap = 2.0 * np.pi - arr[-1] + arr[0]
    largest = max(float(gaps.max()), float(wrap_gap))
    return float(2.0 * np.pi - largest)
