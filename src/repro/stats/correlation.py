"""Circular–linear and circular–circular association measures.

Many natural phenomena have "circular–linear correlation on some time
scale" (Section 5 — seasonal temperature over a year, tidal behaviour over
a day).  These estimators quantify exactly that and are used to sanity-
check the synthetic datasets: the Beijing surrogate must show a strong
circular–linear association between day-of-year and temperature, or the
experiment would not be probing what the paper probes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["circular_linear_correlation", "circular_circular_correlation"]


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    x = x - x.mean()
    y = y - y.mean()
    denom = float(np.sqrt((x @ x) * (y @ y)))
    if denom == 0.0:
        return 0.0
    return float((x @ y) / denom)


def circular_linear_correlation(theta: np.ndarray, x: np.ndarray) -> float:
    """Mardia's circular–linear correlation coefficient ``R ∈ [0, 1]``.

    With ``r_c = corr(x, cos θ)``, ``r_s = corr(x, sin θ)`` and
    ``r_cs = corr(cos θ, sin θ)``:

    ``R² = (r_c² + r_s² − 2 r_c r_s r_cs) / (1 − r_cs²)``

    ``R = 1`` when ``x`` is a perfect sinusoidal function of ``θ``;
    ``R ≈ 0`` for independence.
    """
    theta = np.asarray(theta, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if theta.shape != x.shape or theta.ndim != 1:
        raise InvalidParameterError("theta and x must be 1-D arrays of equal length")
    if theta.size < 3:
        raise InvalidParameterError("need at least 3 observations")
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    r_c = _pearson(x, cos_t)
    r_s = _pearson(x, sin_t)
    r_cs = _pearson(cos_t, sin_t)
    denom = 1.0 - r_cs**2
    if denom <= 1e-12:
        return 0.0
    r_sq = (r_c**2 + r_s**2 - 2.0 * r_c * r_s * r_cs) / denom
    return float(np.sqrt(max(0.0, min(1.0, r_sq))))


def circular_circular_correlation(alpha: np.ndarray, beta: np.ndarray) -> float:
    """Jammalamadaka–SenGupta circular correlation ``ρ_cc ∈ [−1, 1]``.

    ``ρ_cc = Σ sin(α − ᾱ) sin(β − β̄) /
    √(Σ sin²(α − ᾱ) · Σ sin²(β − β̄))``

    where ``ᾱ, β̄`` are the circular means.  Positive when the angles
    co-rotate, negative when they counter-rotate.
    """
    from .descriptive import circular_mean

    alpha = np.asarray(alpha, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    if alpha.shape != beta.shape or alpha.ndim != 1:
        raise InvalidParameterError("alpha and beta must be 1-D arrays of equal length")
    if alpha.size < 3:
        raise InvalidParameterError("need at least 3 observations")
    sin_a = np.sin(alpha - circular_mean(alpha))
    sin_b = np.sin(beta - circular_mean(beta))
    denom = float(np.sqrt(np.sum(sin_a**2) * np.sum(sin_b**2)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(sin_a * sin_b) / denom)
