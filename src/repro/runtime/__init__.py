"""Parallel experiment runtime: batching, sharding and artifact caching.

This package is the orchestration layer between the learning models and
the experiment drivers (see ``docs/ARCHITECTURE.md`` for the full layer
map).  It contributes three independent capabilities:

* :class:`BatchEncoder` (:mod:`repro.runtime.batch`) — whole-split
  record encoding with fused key⊗basis tables, chunked to bound memory,
  optionally bit-packed, and chunk-parallel;
* sharded execution (:mod:`repro.runtime.parallel`) — training and
  query work partitioned over a :class:`WorkerPool` with deterministic
  merge, bit-identical to serial for any worker count;
* :class:`ArtifactStore` (:mod:`repro.runtime.artifacts`) — a
  content-addressed JSON cache under ``benchmarks/results/`` that turns
  repeated ``python -m repro.experiments`` invocations into logged
  cache hits.

The experiment drivers in :mod:`repro.experiments` accept ``workers=``
and ``store=`` arguments that activate all three; nothing here depends
on the experiments, so the runtime is equally usable for new workloads.
"""

from .artifacts import ArtifactStore, canonical_digest
from .batch import BatchEncoder
from .parallel import (
    fit_classifier_sharded,
    fit_regressor_sharded,
    memory_distances_sharded,
    memory_query_sharded,
    memory_query_topk_sharded,
    predict_classifier_sharded,
    predict_regressor_sharded,
    score_classifier_sharded,
)
from .pool import WorkerPool, default_workers, resolve_workers

__all__ = [
    "ArtifactStore",
    "BatchEncoder",
    "WorkerPool",
    "default_workers",
    "canonical_digest",
    "resolve_workers",
    "fit_classifier_sharded",
    "predict_classifier_sharded",
    "score_classifier_sharded",
    "fit_regressor_sharded",
    "predict_regressor_sharded",
    "memory_distances_sharded",
    "memory_query_sharded",
    "memory_query_topk_sharded",
]
