"""Whole-split record encoding: the runtime's batched encode stage.

:class:`BatchEncoder` turns an ``(n, k)`` feature matrix into ``n``
record hypervectors ``⊕_{i=1}^{k} K_i ⊗ V_{idx(x_{t,i})}`` — the
key–value encoding used by the Table 1 classification pipeline — with
three properties the per-call encoders in :mod:`repro.hdc.encoders` do
not give on their own:

* **fused tables** — the ``K_i ⊗ B_m`` bindings are precomputed once per
  encoder into a ``(k, m, d)`` table, so encoding a chunk is a pure
  gather + integer sum with no per-sample XOR pass;
* **chunk-parallel counts** — the per-chunk bit-count phase is pure
  (no RNG), so chunks can run on a :class:`~repro.runtime.pool.WorkerPool`
  while the tie-breaking threshold runs serially over chunks in a fixed
  order.  The output is **bit-identical** for any worker count, and
  identical to :func:`repro.hdc.encoders.encode_keyvalue_records` with
  the same ``chunk_size``;
* **packed output** — ``packed=True`` lands the corpus directly as a
  :class:`~repro.hdc.packed.PackedHV` of ``n × ceil(d / 8)`` bytes.

Example
-------
>>> import numpy as np
>>> from repro.basis import LevelBasis
>>> from repro.hdc.hypervector import random_hypervectors
>>> from repro.runtime import BatchEncoder
>>> basis = LevelBasis(8, 64, seed=0)
>>> emb = basis.linear_embedding(0.0, 1.0)
>>> keys = random_hypervectors(3, 64, seed=1)
>>> enc = BatchEncoder(keys, emb)
>>> hvs = enc.encode(np.random.default_rng(2).random((5, 3)), seed=3)
>>> hvs.shape
(5, 64)
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..basis.base import Embedding
from ..exceptions import DimensionMismatchError, InvalidParameterError
from ..hdc.encoders import DEFAULT_CHUNK_SIZE
from ..hdc.hypervector import as_hypervector
from ..hdc.ops import TieBreak, majority_from_counts
from ..hdc.packed import PackedHV, packed_width
from .pool import WorkerPool

__all__ = ["BatchEncoder"]


class BatchEncoder:
    """Vectorised key–value record encoder over whole splits.

    Parameters
    ----------
    keys:
        ``(k, d)`` key hypervectors, one per feature channel (the ``K_i``
        of Section 6.1).
    embedding:
        The value embedding ``φ`` shared by all channels (discretizer +
        basis table).
    tie_break:
        Majority tie policy; see :func:`repro.hdc.ops.majority_from_counts`.
    chunk_size:
        Records per chunk.  Bounds the transient gather at roughly
        ``chunk_size * k * d`` bytes and fixes the RNG consumption
        pattern of the ``"random"`` tie policy — results depend on
        ``chunk_size`` (through tie draws) but **not** on the worker
        count.

    Example
    -------
    >>> import numpy as np
    >>> from repro.basis import LevelBasis
    >>> from repro.hdc.hypervector import random_hypervectors
    >>> emb = LevelBasis(4, 32, seed=0).linear_embedding(0.0, 1.0)
    >>> enc = BatchEncoder(random_hypervectors(2, 32, seed=1), emb, tie_break="zeros")
    >>> enc.encode(np.array([[0.1, 0.9]]), packed=True).shape
    (1, 32)
    """

    def __init__(
        self,
        keys: np.ndarray,
        embedding: Embedding,
        tie_break: TieBreak = "random",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        keys = as_hypervector(keys)
        if keys.ndim != 2:
            raise InvalidParameterError(f"keys must be a (k, d) table, got shape {keys.shape}")
        if keys.shape[1] != embedding.dim:
            raise DimensionMismatchError(keys.shape[1], embedding.dim, "BatchEncoder")
        if chunk_size < 1:
            raise InvalidParameterError(f"chunk_size must be positive, got {chunk_size}")
        self.embedding = embedding
        self.tie_break = tie_break
        self.chunk_size = int(chunk_size)
        self._keys = keys
        # Fused binding table: fused[i, m] = keys[i] ⊗ basis[m].  For the
        # paper's sizes (k=18, m≈12–720, d=10,000) this is a few MB and
        # removes the per-sample XOR from the encode hot loop.
        self._fused = np.bitwise_xor(
            keys[:, None, :], embedding.basis.vectors[None, :, :]
        )
        self._channel_index = np.arange(keys.shape[0])

    # -- introspection ---------------------------------------------------------
    @property
    def num_channels(self) -> int:
        """Number of feature channels ``k``."""
        return self._keys.shape[0]

    @property
    def dim(self) -> int:
        """Hyperspace dimensionality ``d``."""
        return self._keys.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes held by the fused ``(k, m, d)`` binding table."""
        return self._fused.nbytes

    @property
    def count_dtype(self) -> type:
        """Narrowest integer dtype that safely holds per-bit counts.

        Counts are bounded by the channel count ``k``, so int16 is exact
        for every realistic encoder; the fused ingest tier
        (:mod:`repro.hdc.ingest`) relies on this being the *same* dtype
        :meth:`chunk_counts` reduces in, keeping both paths bit-aligned.
        """
        return np.int16 if self.num_channels <= 16_000 else np.int64

    # -- encoding --------------------------------------------------------------
    def indices(self, features: np.ndarray) -> np.ndarray:
        """Quantise an ``(n, k)`` feature matrix to basis indices.

        Exposed separately because the indices are independent of the
        basis *contents*: an r-sweep can quantise once and re-encode
        against many bases of the same grid size.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.num_channels:
            raise InvalidParameterError(
                f"expected (n, {self.num_channels}) features, got {features.shape}"
            )
        return self.embedding.indices(features.ravel()).reshape(features.shape)

    def chunk_counts(self, indices_chunk: np.ndarray) -> np.ndarray:
        """Per-dimension one-bit counts for one chunk of index rows.

        Pure (no RNG, no state mutation) — this is the unit of parallel
        work.  ``counts[t] = Σ_i bits(K_i ⊗ B[idx[t, i]])``.  Counts are
        accumulated in the narrowest safe integer type (``k`` bounds
        them), which roughly quarters the reduction's memory traffic.
        """
        gathered = self._fused[self._channel_index[None, :], indices_chunk]
        return gathered.sum(axis=1, dtype=self.count_dtype)

    def encode_one(
        self,
        features: np.ndarray,
        seed: SeedLike = None,
        packed: bool = False,
    ) -> Union[np.ndarray, PackedHV]:
        """Single-record fast path of :meth:`encode`.

        Skips the batch machinery (chunk partitioning, worker-pool
        dispatch, per-chunk bookkeeping) for the serving hot path where
        records arrive one at a time.  Takes one ``(k,)`` feature record
        and returns a ``(1, d)`` batch (packed when ``packed=True``) —
        **bit-identical** to ``encode(features[None, :], ...)`` with the
        same seed, including the RNG draws of the ``"random"`` tie
        policy (asserted in ``tests/runtime/test_batch.py``).

        >>> import numpy as np
        >>> from repro.basis import LevelBasis
        >>> from repro.hdc.hypervector import random_hypervectors
        >>> emb = LevelBasis(4, 32, seed=0).linear_embedding(0.0, 1.0)
        >>> enc = BatchEncoder(random_hypervectors(2, 32, seed=1), emb, tie_break="zeros")
        >>> one = enc.encode_one(np.array([0.1, 0.9]))
        >>> bool(np.array_equal(one, enc.encode(np.array([[0.1, 0.9]]))))
        True
        """
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.num_channels,):
            raise InvalidParameterError(
                f"expected one ({self.num_channels},) record, got shape {features.shape}"
            )
        idx = self.embedding.indices(features).reshape(1, self.num_channels)
        counts = self.chunk_counts(idx)
        encoded = majority_from_counts(
            counts, self.num_channels, tie_break=self.tie_break, seed=ensure_rng(seed)
        )
        if packed:
            return PackedHV(np.packbits(encoded, axis=-1), self.dim)
        return encoded

    def encode(
        self,
        features: np.ndarray,
        seed: SeedLike = None,
        packed: bool = False,
        pool: WorkerPool | None = None,
    ) -> Union[np.ndarray, PackedHV]:
        """Encode a whole ``(n, k)`` split.

        Parameters
        ----------
        features:
            ``(n, k)`` raw feature values; quantised by the embedding's
            discretizer.
        seed:
            Randomness for the ``"random"`` tie policy.  Consumed
            serially over chunks in a fixed order, so the result is
            independent of ``pool``.
        packed:
            Emit a bit-packed batch (``n × ceil(d / 8)`` bytes) instead
            of an unpacked ``(n, d)`` array.  The bits are identical.
        pool:
            Optional :class:`~repro.runtime.pool.WorkerPool` running the
            count phase chunk-parallel.  ``None`` runs serially.

        Returns
        -------
        numpy.ndarray or PackedHV
            The encoded records, bit-identical to
            :func:`repro.hdc.encoders.encode_keyvalue_records` with the
            same ``chunk_size`` and seed.
        """
        idx = self.indices(features)
        n = idx.shape[0]
        d = self.dim
        rng = ensure_rng(seed)
        starts = list(range(0, n, self.chunk_size))
        chunks = [idx[s:s + self.chunk_size] for s in starts]
        if pool is None:
            pool = WorkerPool(workers=1)
        counts_per_chunk = pool.map(self.chunk_counts, chunks)

        if packed:
            out = np.empty((n, packed_width(d)), dtype=np.uint8)
        else:
            out = np.empty((n, d), dtype=np.uint8)
        # Threshold serially, in chunk order, sharing one RNG stream:
        # exactly the consumption pattern of the serial encoder.
        for start, counts in zip(starts, counts_per_chunk):
            encoded = majority_from_counts(
                counts, self.num_channels, tie_break=self.tie_break, seed=rng
            )
            stop = min(n, start + self.chunk_size)
            out[start:stop] = np.packbits(encoded, axis=-1) if packed else encoded
        return PackedHV(out, d) if packed else out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchEncoder(channels={self.num_channels}, "
            f"levels={len(self.embedding)}, dim={self.dim})"
        )
