"""Sharded training and query execution with deterministic merge.

The learning models expose pure per-shard statistics
(:meth:`~repro.learning.classifier.CentroidClassifier.shard_counts`,
:meth:`~repro.learning.regression.HDRegressor.shard_bundle`) and
:class:`~repro.hdc.memory.ItemMemory` exposes row partitioning
(:meth:`~repro.hdc.memory.ItemMemory.shards`).  The functions here fan
that work out over a :class:`~repro.runtime.pool.WorkerPool` and merge
the pieces back **in shard order**, so every result is bit-identical to
the corresponding serial call:

* training — per-shard bundle counts are integer sums, which commute;
  absorbing shards in sample order reproduces one serial ``fit`` exactly;
* inference — per-chunk distance blocks are concatenated in chunk order,
  reproducing the full distance matrix before any ``argmin``;
* item-memory queries — per-row-shard distance columns are concatenated
  in insertion order before the winner is taken.

Example
-------
>>> import numpy as np
>>> from repro.learning import CentroidClassifier
>>> from repro.runtime import WorkerPool, fit_classifier_sharded
>>> x = np.random.default_rng(0).integers(0, 2, (64, 32)).astype(np.uint8)
>>> y = list(np.arange(64) % 4)
>>> serial = CentroidClassifier(dim=32, tie_break="zeros").fit(x, y)
>>> clf = CentroidClassifier(dim=32, tie_break="zeros")
>>> with WorkerPool(workers=2) as pool:
...     clf = fit_classifier_sharded(clf, x, y, pool, chunk_size=10)
>>> clf.predict(x) == serial.predict(x)
True

These helpers close over live model objects and in-memory batches, so
they require the (default) ``"thread"`` pool backend; the ``"process"``
backend is for self-contained experiment cells (see
:mod:`repro.experiments`), whose tasks are picklable.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..hdc.coerce import EncodedBatch, batch_rows
from ..hdc.memory import ItemMemory
from ..hdc.packed import is_packed
from ..learning.classifier import CentroidClassifier
from ..learning.merge import absorb_delta
from ..learning.metrics import accuracy
from ..learning.regression import HDRegressor
from ..streaming.chunks import iter_slices
from .pool import WorkerPool

__all__ = [
    "fit_classifier_sharded",
    "merge_label_parts",
    "merge_value_parts",
    "predict_classifier_sharded",
    "score_classifier_sharded",
    "fit_regressor_sharded",
    "predict_regressor_sharded",
    "memory_distances_sharded",
    "memory_query_sharded",
    "memory_query_topk_sharded",
]

#: Default samples per training/inference shard.
DEFAULT_CHUNK_SIZE = 1024


def merge_label_parts(parts: Sequence[Sequence[Hashable]]) -> list[Hashable]:
    """Concatenate per-chunk label lists in chunk order.

    The one merge rule for sharded classification predict — shared by
    the thread-sharded path below and the process-backed serving pool
    (:mod:`repro.serve.procpool`), so the two tiers cannot drift.

    >>> merge_label_parts([["a", "b"], ["c"]])
    ['a', 'b', 'c']
    """
    return [label for part in parts for label in part]


def merge_value_parts(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-chunk value arrays in chunk order (regression twin).

    >>> merge_value_parts([np.array([1.0]), np.array([2.0, 3.0])]).tolist()
    [1.0, 2.0, 3.0]
    """
    return np.concatenate(list(parts), axis=0)


# -- classifier ---------------------------------------------------------------

def fit_classifier_sharded(
    classifier: CentroidClassifier,
    encoded: EncodedBatch,
    labels: Sequence[Hashable],
    pool: WorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> CentroidClassifier:
    """Train a centroid classifier with shard-parallel accumulation.

    Workers compute per-class bundle counts on disjoint sample shards;
    the parent absorbs them in shard order.  Bit-identical to
    ``classifier.fit(encoded, labels)`` for any worker count.

    >>> import numpy as np
    >>> x = np.eye(8, dtype=np.uint8)
    >>> clf = CentroidClassifier(dim=8, tie_break="zeros")
    >>> with WorkerPool(workers=2) as pool:
    ...     _ = fit_classifier_sharded(clf, x, [0, 1] * 4, pool, chunk_size=3)
    >>> clf.classes
    [0, 1]
    """
    labels = list(labels)
    n = batch_rows(encoded)
    if len(labels) != n:
        raise InvalidParameterError(f"got {n} samples but {len(labels)} labels")
    # A thin parallel wrapper over the canonical chunked reducer: the
    # pool runs the pure reduce step (shard_counts), the in-order merge
    # goes through the one shared entry point (absorb_delta) — the same
    # path partial_fit, OnlineLearner.absorb and the ingest cluster use.
    bounds = iter_slices(n, chunk_size)
    shards = pool.map(
        lambda b: classifier.shard_counts(encoded[b[0]:b[1]], labels[b[0]:b[1]]),
        bounds,
    )
    for shard in shards:
        absorb_delta(classifier, shard)
    return classifier


def predict_classifier_sharded(
    classifier: CentroidClassifier,
    encoded: EncodedBatch,
    pool: WorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: str | None = None,
) -> list[Hashable]:
    """Chunk-parallel :meth:`~repro.learning.classifier.CentroidClassifier.predict`.

    The prototype table is materialised once up front
    (:meth:`~repro.learning.classifier.CentroidClassifier.prepare`), then
    query chunks run on the pool and their label lists are concatenated
    in chunk order — identical to one serial ``predict`` call.
    ``backend`` forces the similarity kernel per chunk
    (:mod:`repro.hdc.kernels`; the default ``"auto"`` dispatches on the
    chunk size) — answers are bit-identical for every choice.

    >>> import numpy as np
    >>> x = np.eye(8, dtype=np.uint8)
    >>> clf = CentroidClassifier(dim=8, tie_break="zeros").fit(x, [0] * 4 + [1] * 4)
    >>> with WorkerPool(workers=2) as pool:
    ...     predict_classifier_sharded(clf, x, pool, chunk_size=3) == clf.predict(x)
    True
    """
    classifier.prepare()
    bounds = iter_slices(batch_rows(encoded), chunk_size)
    parts = pool.map(
        lambda b: classifier.predict(encoded[b[0]:b[1]], backend=backend), bounds
    )
    return merge_label_parts(parts)


def score_classifier_sharded(
    classifier: CentroidClassifier,
    encoded: EncodedBatch,
    labels: Sequence[Hashable],
    pool: WorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: str | None = None,
) -> float:
    """Accuracy of :func:`predict_classifier_sharded` against ``labels``.

    Uses the same metric implementation as
    :meth:`~repro.learning.classifier.CentroidClassifier.score`, so the
    serial and sharded score paths can never diverge.

    >>> import numpy as np
    >>> x = np.eye(8, dtype=np.uint8)
    >>> y = [0] * 4 + [1] * 4
    >>> clf = CentroidClassifier(dim=8, tie_break="zeros").fit(x, y)
    >>> with WorkerPool(workers=2) as pool:
    ...     score_classifier_sharded(clf, x, y, pool) == clf.score(x, y)
    True
    """
    predictions = predict_classifier_sharded(
        classifier, encoded, pool, chunk_size, backend=backend
    )
    return accuracy(np.asarray(list(labels), dtype=object),
                    np.asarray(predictions, dtype=object))


# -- regressor ----------------------------------------------------------------

def fit_regressor_sharded(
    model: HDRegressor,
    encoded: EncodedBatch,
    y: np.ndarray,
    pool: WorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> HDRegressor:
    """Train an HD regressor with shard-parallel accumulation.

    Bit-identical to ``model.fit(encoded, y)``: the shard bundles are
    integer count vectors merged by addition.

    >>> import numpy as np
    >>> from repro.basis import LevelBasis
    >>> from repro.learning import HDRegressor
    >>> emb = LevelBasis(4, 16, seed=0).linear_embedding(0.0, 1.0)
    >>> y = np.linspace(0.0, 1.0, 8)
    >>> model = HDRegressor(emb, tie_break="zeros")
    >>> with WorkerPool(workers=2) as pool:
    ...     _ = fit_regressor_sharded(model, emb.encode(y), y, pool, chunk_size=3)
    >>> model.num_samples
    8
    """
    y = np.asarray(y, dtype=np.float64)
    n = batch_rows(encoded)
    if y.shape != (n,):
        raise InvalidParameterError(f"y must have shape ({n},), got {y.shape}")
    # Thin parallel wrapper over the canonical reducer (see
    # fit_classifier_sharded): pool-mapped shard_bundle, in-order merge
    # through the shared absorb_delta entry point.
    bounds = iter_slices(n, chunk_size)
    shards = pool.map(
        lambda b: model.shard_bundle(encoded[b[0]:b[1]], y[b[0]:b[1]]), bounds
    )
    for shard in shards:
        absorb_delta(model, shard)
    return model


def predict_regressor_sharded(
    model: HDRegressor,
    encoded: EncodedBatch,
    pool: WorkerPool,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: str | None = None,
) -> np.ndarray:
    """Chunk-parallel :meth:`~repro.learning.regression.HDRegressor.predict`.

    >>> import numpy as np
    >>> from repro.basis import LevelBasis
    >>> from repro.learning import HDRegressor
    >>> emb = LevelBasis(4, 16, seed=0).linear_embedding(0.0, 1.0)
    >>> y = np.linspace(0.0, 1.0, 8)
    >>> model = HDRegressor(emb, tie_break="zeros").fit(emb.encode(y), y)
    >>> with WorkerPool(workers=2) as pool:
    ...     sharded = predict_regressor_sharded(model, emb.encode(y), pool, chunk_size=3)
    >>> bool(np.array_equal(sharded, model.predict(emb.encode(y))))
    True
    """
    model.prepare()
    bounds = iter_slices(batch_rows(encoded), chunk_size)
    parts = pool.map(
        lambda b: model.predict(encoded[b[0]:b[1]], backend=backend), bounds
    )
    return merge_value_parts(parts)


# -- item memory --------------------------------------------------------------

def memory_distances_sharded(
    memory: ItemMemory,
    queries: EncodedBatch,
    pool: WorkerPool,
    num_shards: int | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Row-sharded :meth:`~repro.hdc.memory.ItemMemory.distances`.

    Partitions the stored rows into ``num_shards`` (default: the pool's
    worker count) contiguous sub-memories, scans them in parallel, and
    concatenates the distance columns in insertion order — the result
    equals ``memory.distances(queries)`` exactly, for any worker count
    and any similarity-kernel ``backend``.

    >>> import numpy as np
    >>> mem = ItemMemory(dim=8)
    >>> for i in range(4):
    ...     mem.add(i, np.full(8, i % 2, dtype=np.uint8))
    >>> q = np.zeros((2, 8), dtype=np.uint8)
    >>> with WorkerPool(workers=2) as pool:
    ...     sharded = memory_distances_sharded(mem, q, pool)
    >>> bool(np.array_equal(sharded, mem.distances(q)))
    True
    """
    shards = memory.shards(num_shards or pool.workers)
    if not shards:
        # Preserve the serial error contract (EmptyModelError on an
        # empty memory) instead of np.hstack's bare ValueError.
        return memory.distances(queries, backend=backend)
    blocks = pool.map(
        lambda m: np.atleast_2d(m.distances(queries, backend=backend)), shards
    )
    merged = np.hstack(blocks)
    single = (queries.ndim if is_packed(queries) else np.asarray(queries).ndim) == 1
    return merged[0] if single else merged


def memory_query_sharded(
    memory: ItemMemory,
    queries: EncodedBatch,
    pool: WorkerPool,
    num_shards: int | None = None,
    backend: str | None = None,
) -> list[Hashable]:
    """Row-sharded :meth:`~repro.hdc.memory.ItemMemory.query_batch`.

    The winner is taken on the merged distance matrix, so ties resolve
    toward the earliest-inserted item exactly as the serial scan does.

    >>> import numpy as np
    >>> mem = ItemMemory(dim=8)
    >>> for i in range(4):
    ...     mem.add(i, np.full(8, i % 2, dtype=np.uint8))
    >>> with WorkerPool(workers=2) as pool:
    ...     memory_query_sharded(mem, np.ones((1, 8), dtype=np.uint8), pool)
    [1]
    """
    distances = np.atleast_2d(
        memory_distances_sharded(memory, queries, pool, num_shards, backend=backend)
    )
    winners = np.argmin(distances, axis=-1)
    keys = memory.keys()
    return [keys[i] for i in winners]


def memory_query_topk_sharded(
    memory: ItemMemory,
    queries: EncodedBatch,
    k: int,
    pool: WorkerPool,
    num_shards: int | None = None,
    backend: str | None = None,
) -> list:
    """Row-sharded :meth:`~repro.hdc.memory.ItemMemory.query_topk`.

    Each shard retrieves its own top ``min(k, len(shard))`` candidates
    (fused, no full distance matrix); the merge re-ranks the candidate
    union by ``(distance, insertion index)``, which contains the global
    top-``k`` by construction.  Distances are exact multiples of
    ``1 / d``, so the float comparison in the merge is exact and the
    result is **bit-identical** to the serial ``query_topk`` for any
    shard count, worker count and backend.

    >>> import numpy as np
    >>> mem = ItemMemory(dim=8)
    >>> for i in range(6):
    ...     hv = np.zeros(8, dtype=np.uint8); hv[:i] = 1
    ...     mem.add(i, hv)
    >>> q = np.zeros(8, dtype=np.uint8)
    >>> with WorkerPool(workers=3) as pool:
    ...     memory_query_topk_sharded(mem, q, 2, pool) == mem.query_topk(q, 2)
    True
    """
    if not isinstance(k, (int, np.integer)) or isinstance(k, bool) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    shards = memory.shards(num_shards or pool.workers)
    if len(shards) <= 1:
        return memory.query_topk(queries, k, backend=backend)
    if k > len(memory):
        raise InvalidParameterError(
            f"k must be an integer in [1, {len(memory)}] (the table size), got {k!r}"
        )
    offsets = np.cumsum([0] + [len(s) for s in shards[:-1]])
    results = pool.map(
        lambda shard: shard.topk(queries, min(k, len(shard)), backend=backend), shards
    )
    cand_idx = np.concatenate(
        [np.atleast_2d(r.indices) + off for r, off in zip(results, offsets)], axis=1
    )
    cand_dist = np.concatenate(
        [np.atleast_2d(r.distances) for r in results], axis=1
    )
    # Merge on the same combined integer key as the fused kernel:
    # counts · m + index is ascending-lexicographic in (distance, index).
    # (Distances are exact multiples of 1/dim, so the rint round-trip
    # recovers the integer counts exactly.)
    m = len(memory)
    if (memory.dim + 1) * m >= 2**63:  # pragma: no cover - absurd sizes
        # Same guard as topk_hamming: per-shard keys fit (shard m is
        # smaller), but the merged key must not wrap either.
        raise InvalidParameterError(
            f"top-k merge keys would overflow int64 for dim={memory.dim}, m={m}"
        )
    counts = np.rint(cand_dist * memory.dim).astype(np.int64)
    keys_combined = counts * np.int64(m) + cand_idx
    order = np.argsort(keys_combined, axis=1)[:, :k]
    best = np.take_along_axis(keys_combined, order, axis=1)
    indices = best % m
    distances = (best // m) / memory.dim
    keys = memory.keys()
    out = [
        [(keys[int(i)], float(d)) for i, d in zip(row_i, row_d)]
        for row_i, row_d in zip(indices, distances)
    ]
    single = (queries.ndim if is_packed(queries) else np.asarray(queries).ndim) == 1
    return out[0] if single else out
