"""Deterministic worker pools for the experiment runtime.

Every parallel path in :mod:`repro.runtime` funnels through
:class:`WorkerPool`, which maps a function over a task list on a thread
or process pool and returns results **in task order** — never in
completion order.  Determinism therefore never depends on scheduling:
a pool with ``workers=4`` produces exactly the list that ``workers=1``
produces, just faster.

Thread workers are the default: the hot kernels (XOR, popcount, gather,
integer sums) are numpy calls that release the GIL, so threads scale on
multi-core hardware without pickling any arrays.  The ``"process"``
backend is available for workloads dominated by Python-level code; task
functions submitted to it must be picklable (module-level functions).

Example
-------
>>> from repro.runtime import WorkerPool
>>> with WorkerPool(workers=2) as pool:
...     pool.map(lambda x: x * x, [1, 2, 3])
[1, 4, 9]
>>> WorkerPool(workers=1).map(len, ["ab", "c"])   # serial: runs inline
[2, 1]
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from ..exceptions import InvalidParameterError

__all__ = [
    "WorkerPool",
    "default_start_method",
    "default_workers",
    "resolve_workers",
]

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("thread", "process")

#: Environment variable overriding the calibrated default worker count
#: (the calibration knob is ``runtime.workers``; see
#: :func:`default_workers`).
_ENV_WORKERS = "REPRO_WORKERS"


def _star_apply(fn_args: tuple[Callable[..., R], tuple]) -> R:
    """Unpack ``(fn, args)`` — module-level so the process backend can pickle it."""
    fn, args = fn_args
    return fn(*args)


def default_start_method() -> str:
    """The ``multiprocessing`` start method process-backed tiers use.

    ``fork`` where the platform offers it (cheap, inherits the loaded
    model/tables without re-import), else ``spawn`` — the one rule
    shared by the ingest cluster coordinator and the serving
    :class:`~repro.serve.procpool.ProcPredictPool`.

    >>> default_start_method() in ("fork", "spawn")
    True
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request.

    ``None`` or ``0`` means "one worker per available CPU"; any positive
    integer is taken literally.

    >>> resolve_workers(3)
    3
    >>> resolve_workers(None) >= 1
    True
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 0:
        raise InvalidParameterError(f"workers must be a non-negative integer, got {workers!r}")
    return workers


def default_workers(workers: int | None = None) -> int:
    """The calibrated default worker count for engines and drivers.

    Resolution order (:func:`repro.tuning.calibration.resolve_knob`):
    the explicit ``workers`` argument, then the ``REPRO_WORKERS``
    environment variable, then the active calibration artifact's
    ``runtime.workers`` knob, then ``1`` (the serial reference —
    uncalibrated processes behave exactly as before).  Worker counts
    only schedule work: every consumer is bit-identical for any value.

    Distinct from :func:`resolve_workers`, which normalises an explicit
    request (``None``/``0`` → one worker per CPU) *inside*
    :class:`WorkerPool`; this function decides what unconfigured callers
    ask for in the first place.

    >>> default_workers(4)
    4
    >>> default_workers() >= 1
    True
    """
    from ..tuning.calibration import resolve_knob

    value = resolve_knob(
        "runtime",
        "workers",
        builtin=1,
        arg=workers,
        env_var=_ENV_WORKERS,
        cast=int,
        minimum=1,
    )
    return max(1, int(value))


class WorkerPool:
    """Ordered map over a thread/process pool (or inline when serial).

    Parameters
    ----------
    workers:
        Number of concurrent workers.  ``1`` (the default) runs every
        task inline on the calling thread — no executor, no overhead —
        which is also the reference behaviour parallel runs must
        reproduce bit-for-bit.  ``None``/``0`` auto-sizes to the CPU
        count.
    backend:
        ``"thread"`` (default; zero-copy, GIL released by the numpy
        kernels) or ``"process"`` (picklable tasks only).

    The pool is a context manager; it may also be used without ``with``,
    in which case each :meth:`map` call tears its executor down before
    returning.

    Example
    -------
    >>> with WorkerPool(workers=2) as pool:
    ...     pool.starmap(pow, [(2, 3), (3, 2)])
    [8, 9]
    """

    def __init__(self, workers: int | None = 1, backend: str = "thread") -> None:
        if backend not in _BACKENDS:
            raise InvalidParameterError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.workers = resolve_workers(workers)
        self.backend = backend
        self._executor: Executor | None = None
        self._entered = False

    @property
    def serial(self) -> bool:
        """True when tasks run inline on the calling thread."""
        return self.workers <= 1

    # -- lifecycle -------------------------------------------------------------
    def _make_executor(self) -> Executor:
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers)

    def __enter__(self) -> "WorkerPool":
        if not self.serial and self._executor is None:
            self._executor = self._make_executor()
        self._entered = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the underlying executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._entered = False

    # -- mapping ---------------------------------------------------------------
    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every task, returning results in task order.

        Exceptions raised by any task propagate to the caller (after the
        already-submitted tasks finish), exactly as a serial loop would
        surface them.
        """
        items: Sequence[T] = list(tasks)
        if self.serial or len(items) <= 1:
            return [fn(item) for item in items]
        if self._executor is not None:
            return list(self._executor.map(fn, items))
        with self._make_executor() as executor:
            return list(executor.map(fn, items))

    def starmap(self, fn: Callable[..., R], tasks: Iterable[tuple]) -> list[R]:
        """Like :meth:`map` but unpacks each task tuple into arguments."""
        return self.map(_star_apply, [(fn, tuple(args)) for args in tasks])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerPool(workers={self.workers}, backend={self.backend!r})"
