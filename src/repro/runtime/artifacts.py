"""Content-addressed artifact cache for experiment results.

Every paper artifact (Table 1/2, the Figure 8 sweep, …) is a pure
function of its configuration: dimension, seed, basis kinds, task list,
grid sizes.  :class:`ArtifactStore` content-hashes that configuration
(canonical JSON → SHA-256) and maps it to a JSON result file under
``benchmarks/results/`` (override with the ``REPRO_RESULTS_DIR``
environment variable or the ``root`` argument), so re-running
``python -m repro.experiments table1`` with an unchanged config is a
logged cache hit that recomputes nothing.

Cache entries are self-describing — each file records the experiment
name, the full parameter dictionary, the digest and a creation
timestamp next to the result — and writes are atomic (temp file +
``os.replace``), so a crashed run never leaves a corrupt entry.

Example
-------
>>> import tempfile
>>> from repro.runtime import ArtifactStore
>>> store = ArtifactStore(root=tempfile.mkdtemp())
>>> calls = []
>>> def compute():
...     calls.append(1)
...     return {"accuracy": 0.9}
>>> store.fetch("demo", {"dim": 64, "seed": 7}, compute)
{'accuracy': 0.9}
>>> store.fetch("demo", {"dim": 64, "seed": 7}, compute)  # served from cache
{'accuracy': 0.9}
>>> len(calls)
1
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from ..exceptions import InvalidParameterError

__all__ = ["ArtifactStore", "canonical_digest", "default_root"]

logger = logging.getLogger("repro.runtime.artifacts")

#: Bump when a change to the experiment pipeline invalidates old results.
SCHEMA_VERSION = 1

#: Default cache location, relative to the repository root (see
#: :func:`default_root`).
DEFAULT_ROOT = "benchmarks/results"

#: Environment variable overriding the default cache location.
ROOT_ENV_VAR = "REPRO_RESULTS_DIR"


def default_root() -> Path:
    """Resolve the default cache directory.

    Precedence: the ``REPRO_RESULTS_DIR`` environment variable; then the
    repository's ``benchmarks/results`` when running from a source
    checkout (anchored to the tree containing this file, not the current
    working directory, so the CLI never scatters stray ``benchmarks/``
    directories); then ``~/.cache/repro-hdc/results`` for installed
    packages.

    >>> isinstance(default_root(), Path)
    True
    """
    env = os.environ.get(ROOT_ENV_VAR)
    if env:
        return Path(env)
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "pyproject.toml").is_file():
        return repo_root / DEFAULT_ROOT
    return Path.home() / ".cache" / "repro-hdc" / "results"


def canonical_digest(params: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON serialisation of ``params``.

    Keys are sorted and separators fixed, so logically equal parameter
    dictionaries hash identically regardless of insertion order; tuples
    serialise as JSON lists.

    >>> canonical_digest({"a": 1, "b": 2}) == canonical_digest({"b": 2, "a": 1})
    True
    """
    try:
        blob = json.dumps(dict(params), sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(
            f"experiment parameters must be JSON-serialisable: {exc}"
        ) from exc
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ArtifactStore:
    """JSON result cache keyed by content-hashed experiment configs.

    Parameters
    ----------
    root:
        Directory holding the cache files.  Defaults to
        :func:`default_root` (``REPRO_RESULTS_DIR``, the repo's
        ``benchmarks/results``, or ``~/.cache/repro-hdc/results``).
        Created on first write.
    enabled:
        When ``False`` every lookup misses and every store is skipped —
        the object form of the CLI's ``--no-cache`` flag, so call sites
        need no branching.

    Example
    -------
    >>> import tempfile
    >>> store = ArtifactStore(root=tempfile.mkdtemp())
    >>> store.load("demo", {"dim": 8}) is None   # cold cache
    True
    >>> _ = store.store("demo", {"dim": 8}, {"acc": 1.0})
    >>> store.load("demo", {"dim": 8})
    {'acc': 1.0}
    """

    def __init__(self, root: str | Path | None = None, enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.enabled = bool(enabled)

    # -- addressing ------------------------------------------------------------
    def _key(self, experiment: str, params: Mapping[str, Any]) -> tuple[str, dict[str, Any]]:
        if not experiment or not isinstance(experiment, str):
            raise InvalidParameterError(f"experiment must be a non-empty string, got {experiment!r}")
        full = {"experiment": experiment, "schema": SCHEMA_VERSION, **dict(params)}
        return canonical_digest(full), full

    def _path(self, experiment: str, digest: str) -> Path:
        """The single source of truth for the cache-file naming scheme."""
        return self.root / f"{experiment}-{digest[:16]}.json"

    def path_for(self, experiment: str, params: Mapping[str, Any]) -> Path:
        """Cache-file path an entry for these parameters would occupy."""
        digest, _ = self._key(experiment, params)
        return self._path(experiment, digest)

    # -- lookup / store ----------------------------------------------------------
    def load(self, experiment: str, params: Mapping[str, Any]) -> Any | None:
        """Return the cached result for this config, or ``None`` on a miss.

        A hit is logged at INFO level (``repro.runtime.artifacts``); an
        unreadable or mismatched entry is treated as a miss.
        """
        if not self.enabled:
            return None
        digest, _ = self._key(experiment, params)
        path = self._path(experiment, digest)
        if not path.is_file():
            return None
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            logger.warning("cache entry %s is unreadable; recomputing", path)
            return None
        if entry.get("digest") != digest:
            logger.warning("cache entry %s has a stale digest; recomputing", path)
            return None
        logger.info("cache hit: %s served from %s", experiment, path)
        return entry["result"]

    def store(self, experiment: str, params: Mapping[str, Any], result: Any) -> Path | None:
        """Persist a result atomically; returns the path (``None`` if disabled)."""
        if not self.enabled:
            return None
        digest, full = self._key(experiment, params)
        path = self._path(experiment, digest)
        entry = {
            "experiment": experiment,
            "digest": digest,
            "params": full,
            "created_unix": time.time(),
            "result": result,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        logger.info("cache store: %s written to %s", experiment, path)
        return path

    def fetch(
        self,
        experiment: str,
        params: Mapping[str, Any],
        compute: Callable[[], Any],
        decode: Callable[[Any], Any] | None = None,
        encode: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Return the cached result, computing and storing it on a miss.

        ``encode``/``decode`` optionally convert between the in-memory
        result type and its JSON payload (e.g. dataclasses with tuple
        fields); both default to the identity.
        """
        cached = self.load(experiment, params)
        if cached is not None:
            return decode(cached) if decode else cached
        result = compute()
        self.store(experiment, params, encode(result) if encode else result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={str(self.root)!r}, enabled={self.enabled})"
