"""Hyperdimensional consistent hashing (Heddes et al., DAC 2022).

Section 5.1 of the paper adapts the circular-hypervector construction from
this system: a dynamic hash table that distributes requests across a
changing population of servers.  We reimplement it as a substrate — both
because the paper's main contribution generalises its algorithm, and
because it is an excellent integration test of circular-hypervectors'
defining property (neighbourhood structure with no endpoints).

Design (following the consistent-hashing blueprint of Karger et al.):

* a circular-hypervector set of ``m`` *slots* represents positions on the
  hash ring;
* each server owns a slot (its hypervector is the slot's);
* a request key is hashed to a deterministic pseudo-random angle and
  encoded with the slot set's circular embedding;
* the request is routed to the server whose hypervector is most similar
  to the request's — i.e. the nearest server on the ring, found with HDC
  similarity search instead of sorted-ring bisection.

The consistent-hashing contract, verified by the tests:

* **balance** — with randomly placed servers, keys spread across servers;
* **monotonicity / minimal disruption** — adding or removing one server
  only remaps keys adjacent to it on the ring (expected fraction
  ``≈ 1/(servers ± 1)``), never keys between two unrelated servers.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable

import numpy as np

from .._rng import SeedLike
from ..basis.circular import CircularBasis
from ..exceptions import EmptyModelError, InvalidParameterError
from ..hdc.memory import ItemMemory

__all__ = ["HyperdimensionalHashRing", "key_to_angle"]

TWO_PI = 2.0 * math.pi


def key_to_angle(key: Hashable) -> float:
    """Hash any key to a deterministic pseudo-uniform angle in ``[0, 2π)``.

    Uses BLAKE2b (stable across processes and platforms, unlike Python's
    salted ``hash``) on the key's ``repr``; the first 8 bytes become a
    uniform fraction of the circle.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    fraction = int.from_bytes(digest, "big") / 2**64
    return fraction * TWO_PI


class HyperdimensionalHashRing:
    """Consistent hashing over a circular-hypervector ring.

    Parameters
    ----------
    slots:
        Number of ring positions (the resolution of the ring).  More
        slots = finer-grained server placement.
    dim:
        Hyperspace dimensionality.
    seed:
        Randomness for the circular slot set.

    Example
    -------
    >>> ring = HyperdimensionalHashRing(slots=64, dim=4096, seed=0)
    >>> for name in ("alpha", "beta", "gamma"):
    ...     ring.add_server(name)
    >>> server = ring.route("user-42")      # deterministic routing
    >>> server in {"alpha", "beta", "gamma"}
    True
    """

    def __init__(self, slots: int = 256, dim: int = 10_000, seed: SeedLike = None) -> None:
        if slots < 2:
            raise InvalidParameterError(f"need at least 2 slots, got {slots}")
        self._basis = CircularBasis(slots, dim, seed=seed)
        self._memory = ItemMemory(dim)
        self._server_slots: dict[Hashable, int] = {}

    @property
    def slots(self) -> int:
        """Number of ring positions."""
        return len(self._basis)

    @property
    def servers(self) -> list[Hashable]:
        """Currently registered servers."""
        return self._memory.keys()

    def _slot_of_angle(self, angle: float) -> int:
        return int(round(angle / TWO_PI * self.slots)) % self.slots

    def slot_of(self, server: Hashable) -> int:
        """Ring slot owned by ``server`` (raises ``KeyError`` if absent)."""
        return self._server_slots[server]

    def add_server(self, server: Hashable) -> int:
        """Register a server at the slot its name hashes to.

        If that slot is occupied, linear-probe to the next free slot so
        every server owns a distinct position.  Returns the slot index.
        """
        if server in self._server_slots:
            raise InvalidParameterError(f"server {server!r} already registered")
        if len(self._server_slots) >= self.slots:
            raise InvalidParameterError("ring is full; increase slots")
        slot = self._slot_of_angle(key_to_angle(server))
        taken = set(self._server_slots.values())
        while slot in taken:
            slot = (slot + 1) % self.slots
        self._server_slots[server] = slot
        self._memory.add(server, self._basis[slot])
        return slot

    def remove_server(self, server: Hashable) -> None:
        """Deregister a server (its keys fall to the ring neighbours)."""
        del self._server_slots[server]
        self._memory.remove(server)

    def route(self, key: Hashable) -> Hashable:
        """Route a request key to its server (nearest on the ring).

        The key's angle is encoded as the nearest slot's circular
        hypervector; the winning server is the one with the most similar
        hypervector.  Because circular-hypervector distance grows with
        ring distance, this is exactly "walk to the nearest server".
        """
        if not self._server_slots:
            raise EmptyModelError("no servers registered")
        slot = self._slot_of_angle(key_to_angle(key))
        return self._memory.query(self._basis[slot])

    def route_many(self, keys: Iterable[Hashable]) -> list[Hashable]:
        """Vectorised :meth:`route` for many keys at once."""
        keys = list(keys)
        if not self._server_slots:
            raise EmptyModelError("no servers registered")
        if not keys:
            return []
        slots = np.array([self._slot_of_angle(key_to_angle(k)) for k in keys])
        return self._memory.query_batch(self._basis[slots])

    def load_distribution(self, keys: Iterable[Hashable]) -> dict[Hashable, int]:
        """Number of keys routed to each server (all servers included)."""
        counts: dict[Hashable, int] = {server: 0 for server in self.servers}
        for server in self.route_many(keys):
            counts[server] += 1
        return counts
