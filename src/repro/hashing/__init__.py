"""Hyperdimensional consistent hashing (the origin of circular-hypervectors)."""

from .hyperhash import HyperdimensionalHashRing, key_to_angle

__all__ = ["HyperdimensionalHashRing", "key_to_angle"]
