"""The cluster worker process: assigned chunks in, deltas out.

A worker owns nothing but a :class:`WorkerPlan` — its own copy of the
(picklable, deterministically re-iterable) chunk source, a picklable
encode callable, and an untrained model clone used purely for
:func:`~repro.learning.merge.shard_delta` type dispatch.  It iterates
the source from the beginning (the synthetic sources have no random
chunk access; generation is cheap next to encoding), encodes only the
chunks assigned to it by round robin (``index % num_workers ==
worker_id``) at or past its replay cursor ``start_index``, and ships
one message per chunk over its pipe:

``("delta", worker_id, incarnation, chunk_index, rows, delta)``
    one chunk's pure bundle statistics;
``("done", worker_id, incarnation, total_chunks)``
    end of stream (``total_chunks`` is the full source length, the
    coordinator's termination criterion);
``("error", worker_id, incarnation, detail)``
    a Python-level failure (bad data, encode error) — distinct from a
    *crash*, which sends nothing and is detected by pipe EOF.

Workers never see each other and never see the merged model; all
ordering and dedupe lives in the coordinator.  Because the source and
encode are deterministic, a restarted worker (``incarnation + 1``,
``start_index`` = its cursor) regenerates byte-identical deltas for any
chunk it replays — the property that makes ``kill -9`` recovery exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..hdc.ingest import shard_ingest
from ..learning.classifier import CentroidClassifier
from ..learning.merge import shard_delta
from ..learning.regression import HDRegressor

__all__ = ["WorkerPlan", "worker_main", "worker_proto"]


def worker_proto(
    model: Union[CentroidClassifier, HDRegressor],
) -> Union[CentroidClassifier, HDRegressor]:
    """An untrained, RNG-free clone of ``model`` for pure delta work.

    Workers only call :func:`~repro.learning.merge.shard_delta`, which
    needs the model's type, dimensionality and (for regressors) label
    embedding — never its accumulators or tie-break RNG.  Shipping a
    stripped clone keeps worker plans small and makes it structurally
    impossible for a worker to consume the real model's RNG stream.
    """
    if isinstance(model, CentroidClassifier):
        return CentroidClassifier(model.dim, tie_break="zeros")
    if isinstance(model, HDRegressor):
        return HDRegressor(
            model.label_embedding,
            tie_break="zeros",
            decode=model.decode_mode,
            model=model.model_mode,
        )
    raise InvalidParameterError(
        f"no cluster worker dispatch for {type(model).__name__}; supported: "
        "CentroidClassifier, HDRegressor"
    )


@dataclass
class WorkerPlan:
    """Everything one worker process needs, fully picklable.

    ``hook`` (optional) is the fault-injection seam: a picklable
    callable ``hook(phase, worker_id, incarnation, chunk_index)`` fired
    before each assigned chunk encodes (``"chunk_start"``) and after its
    delta is sent (``"chunk_sent"``) — see
    :class:`~repro.cluster.fault.CrashPlan`.
    """

    worker_id: int
    num_workers: int
    source: object
    encode: Callable
    proto: object
    start_index: int = 0
    incarnation: int = 0
    hook: Callable | None = None
    #: Ingest kernel backend for the per-chunk delta computation
    #: (:data:`repro.hdc.ingest.INGEST_BACKENDS`); ``None`` defers to
    #: ``REPRO_INGEST_KERNEL`` in the worker's environment, then
    #: ``"auto"``.  Every backend ships byte-identical deltas, so
    #: replay after a crash is exact whatever the restarted worker
    #: resolves.
    ingest: str | None = None

    def _fire(self, phase: str, chunk_index: int) -> None:
        if self.hook is not None:
            self.hook(phase, self.worker_id, self.incarnation, chunk_index)


def worker_main(plan: WorkerPlan, conn) -> None:
    """Process entry point: stream, encode, ship, exit.

    Module-level (not a closure) so worker processes can be started
    under the ``spawn`` method as well as ``fork``.  The connection is
    closed on every exit path; an abrupt death (``SIGKILL``) closes it
    mid-message, which the coordinator reads as a crash.
    """
    classify = isinstance(plan.proto, CentroidClassifier)
    try:
        total = 0
        for index, chunk in enumerate(plan.source):
            total = index + 1
            chunk_index = index  # global position == local position: every
            # worker iterates the full source and filters, so indices agree
            # across workers and with the serial run.
            if chunk_index % plan.num_workers != plan.worker_id:
                continue
            if chunk_index < plan.start_index:
                continue
            plan._fire("chunk_start", chunk_index)
            if chunk.targets is None:
                raise InvalidParameterError(
                    "cluster ingest needs labelled chunks; this source yields "
                    "targets=None"
                )
            # Fused ingest first: when the (proto, encode) pair is a
            # recognised fusible combination the delta is computed
            # without materialising the encoded chunk — byte-identical
            # to shard_delta below (asserted in tests/hdc/test_ingest.py).
            delta = shard_ingest(plan.proto, chunk, plan.encode, backend=plan.ingest)
            if delta is None:
                encoded = plan.encode(chunk)
                targets = chunk.targets
                if classify:
                    # Same label normalisation as encode_reduce, so streamed
                    # cluster models serialise exactly like serial ones.
                    targets = (
                        targets.tolist()
                        if isinstance(targets, np.ndarray)
                        else list(targets)
                    )
                else:
                    targets = np.asarray(targets, dtype=np.float64)
                delta = shard_delta(plan.proto, encoded, targets)
            conn.send(
                (
                    "delta",
                    plan.worker_id,
                    plan.incarnation,
                    chunk_index,
                    chunk.rows,
                    delta,
                )
            )
            plan._fire("chunk_sent", chunk_index)
        conn.send(("done", plan.worker_id, plan.incarnation, total))
    except Exception as exc:  # ship the failure; never die silently
        try:
            conn.send(
                (
                    "error",
                    plan.worker_id,
                    plan.incarnation,
                    f"{type(exc).__name__}: {exc}",
                )
            )
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
