"""Deterministic fault injection for the ingest cluster.

A :class:`CrashPlan` is a worker hook that ``kill -9``'s its own process
at scheduled points — the primitive behind the ``tests/cluster/``
fault-injection harness and the failover drill in
``docs/DISTRIBUTED.md``.  Schedules are keyed by
``(worker_id, incarnation, chunk_index, phase)``, so a restarted worker
(incarnation 1) replays cleanly past the point where incarnation 0
died, and multi-crash scenarios stay fully reproducible.

Phases correspond to the two interesting failure positions:

* :data:`PHASE_CHUNK_START` — **mid-chunk**: the worker dies after
  pulling a chunk but before shipping its delta; the restarted worker
  must regenerate and re-send it.
* :data:`PHASE_CHUNK_SENT` — **chunk boundary**: the worker dies right
  after the delta left its pipe; the coordinator's dedupe must drop the
  replayed duplicate.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

__all__ = ["CrashPlan", "PHASE_CHUNK_START", "PHASE_CHUNK_SENT"]

#: Hook phase fired before a chunk is encoded (a mid-chunk kill point).
PHASE_CHUNK_START = "chunk_start"

#: Hook phase fired after a chunk's delta was sent (a boundary kill point).
PHASE_CHUNK_SENT = "chunk_sent"


@dataclass(frozen=True)
class CrashPlan:
    """A picklable ``kill -9`` schedule for cluster workers.

    ``kills`` holds ``(worker_id, incarnation, chunk_index, phase)``
    tuples; when a worker's hook fires with a matching coordinate the
    worker sends itself ``SIGKILL`` — no cleanup, no goodbye, exactly
    the failure mode a crashed or OOM-killed ingest node presents.

    Example
    -------
    >>> plan = CrashPlan.at((1, 0, 4, PHASE_CHUNK_START))
    >>> plan.should_crash(PHASE_CHUNK_START, 1, 0, 4)
    True
    >>> plan.should_crash(PHASE_CHUNK_START, 1, 1, 4)   # restarted: survives
    False
    """

    kills: frozenset = field(default_factory=frozenset)

    @classmethod
    def at(cls, *entries: tuple) -> "CrashPlan":
        """Build a plan from ``(worker_id, incarnation, index, phase)`` tuples."""
        return cls(kills=frozenset(tuple(entry) for entry in entries))

    def should_crash(
        self, phase: str, worker_id: int, incarnation: int, chunk_index: int
    ) -> bool:
        """Whether this coordinate is scheduled to die (pure; no kill)."""
        return (worker_id, incarnation, chunk_index, phase) in self.kills

    def __call__(
        self, phase: str, worker_id: int, incarnation: int, chunk_index: int
    ) -> None:
        if self.should_crash(phase, worker_id, incarnation, chunk_index):
            os.kill(os.getpid(), signal.SIGKILL)
