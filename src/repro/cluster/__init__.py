"""Distributed exact-merge ingest: multi-process training with failover.

The count accumulators behind every training path are exact,
order-independent merges (integer sums — effectively CRDTs), so ingest
scales out without approximation: shard the chunk stream across worker
*processes*, compute per-chunk deltas independently, and fold them back
deterministically.  This package is that scale-out tier:

* :mod:`repro.cluster.worker` — the worker process: iterates its own
  copy of the (picklable, deterministically re-iterable) chunk source,
  encodes its assigned chunks, and ships
  :func:`~repro.learning.merge.shard_delta` results back over a pipe;
* :mod:`repro.cluster.coordinator` —
  :class:`~repro.cluster.coordinator.ClusterCoordinator`: round-robin
  chunk assignment, strict in-order delta absorption (a reorder buffer
  keyed by global chunk index, so classifier class order matches a
  serial fit bit for bit), crash detection with per-worker restart from
  the chunk cursor, and cursor-bearing atomic checkpoints;
* :mod:`repro.cluster.fault` — :class:`~repro.cluster.fault.CrashPlan`,
  the deterministic ``kill -9`` schedule that makes "simulated cluster
  with seeded failures" a reusable test fixture (``tests/cluster/``).

The contract, proven by the fault-injection suite: for any worker
count, chunk size, checkpoint cadence, or crash schedule, the final
model is **bit-identical** (arrays and RNG state) to the single-process
:func:`~repro.streaming.train.stream_fit_classifier` /
:func:`~repro.streaming.train.stream_fit_regressor` run on the same
source.  Topology, cursor format and a failover walkthrough live in
``docs/DISTRIBUTED.md``.
"""

from .coordinator import ClusterCoordinator, default_cluster_workers
from .fault import PHASE_CHUNK_SENT, PHASE_CHUNK_START, CrashPlan
from .worker import WorkerPlan, worker_main

__all__ = [
    "ClusterCoordinator",
    "default_cluster_workers",
    "CrashPlan",
    "PHASE_CHUNK_START",
    "PHASE_CHUNK_SENT",
    "WorkerPlan",
    "worker_main",
]
