"""The ingest coordinator: shard, merge in order, survive ``kill -9``.

:class:`ClusterCoordinator` drives a fleet of worker *processes* over
one chunk stream and folds their per-chunk deltas into the live model
with three properties the fault-injection suite pins down:

* **determinism** — deltas are absorbed strictly in global chunk order
  through a reorder buffer, so the merged model (including a
  classifier's first-seen class order, which decides nearest-class
  ties) is bit-identical to a serial ``stream_fit`` for any worker
  count;
* **failover** — each worker has its own pipe, so a ``SIGKILL``
  mid-message corrupts only that worker's channel; the coordinator
  detects the death, restarts the worker at its chunk cursor (the
  smallest assigned chunk not yet received), and dedupes any chunk the
  dead incarnation had already delivered;
* **checkpointability** — :meth:`per_worker_cursor` exposes exactly
  the replay state a checkpoint needs: with the model having absorbed
  chunks ``[0, frontier)``, each worker's cursor is its first assigned
  chunk at or past the frontier.

Worker assignment is round robin by global chunk index (``index %
workers``); workers regenerate the stream independently (the sources
re-derive per-cell RNG substreams, so iteration is deterministic and
cheap relative to encoding) and only encode their own chunks.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Union

from ..exceptions import ClusterError, InvalidParameterError
from ..learning.merge import absorb_delta
from ..runtime.pool import default_start_method
from ..streaming.chunks import ChunkSource
from ..streaming.reduce import StreamStats
from .worker import WorkerPlan, worker_main, worker_proto

__all__ = ["ClusterCoordinator", "default_cluster_workers"]

#: Environment variable overriding the default cluster worker count
#: (the calibration knob is ``cluster.workers``).
_ENV_CLUSTER_WORKERS = "REPRO_CLUSTER_WORKERS"


def default_cluster_workers(workers: Union[int, None] = None) -> int:
    """The calibrated default ingest worker-process count.

    Resolution order (:func:`repro.tuning.calibration.resolve_knob`):
    the explicit ``workers`` argument, then ``REPRO_CLUSTER_WORKERS``,
    then the calibration artifact's ``cluster.workers`` knob, then
    ``1``.  Worker counts only schedule work — the merged model is
    bit-identical for any value.

    >>> default_cluster_workers(3)
    3
    >>> default_cluster_workers() >= 1
    True
    """
    from ..tuning.calibration import resolve_knob

    value = resolve_knob(
        "cluster",
        "workers",
        builtin=1,
        arg=workers,
        env_var=_ENV_CLUSTER_WORKERS,
        cast=int,
        minimum=1,
    )
    return max(1, int(value))




@dataclass
class _WorkerState:
    process: object
    conn: object
    incarnation: int = 0
    done: bool = False
    restarts: int = 0


class ClusterCoordinator:
    """Shard a chunk stream across worker processes; merge exactly.

    Parameters
    ----------
    model:
        The live model deltas are folded into
        (:class:`~repro.learning.classifier.CentroidClassifier` or
        :class:`~repro.learning.regression.HDRegressor`).  Only the
        coordinator ever touches it.
    source:
        A picklable, deterministically re-iterable
        :class:`~repro.streaming.ChunkSource`; every worker iterates
        its own copy.
    encode:
        A picklable per-chunk encode callable
        (:class:`~repro.streaming.train.RecordEncode` /
        :class:`~repro.streaming.train.ValueEncode`).
    workers:
        Worker process count (``None`` resolves through
        :func:`default_cluster_workers`).
    hook:
        Optional picklable fault-injection hook installed into every
        worker (see :class:`~repro.cluster.fault.CrashPlan`).
    max_restarts:
        Restart budget *per worker*; exceeding it raises
        :class:`~repro.exceptions.ClusterError`.
    mp_start:
        Multiprocessing start method (default: ``"fork"`` where
        available, else ``"spawn"``).

    Example
    -------
    >>> import numpy as np
    >>> from repro.learning import CentroidClassifier
    >>> from repro.runtime import BatchEncoder
    >>> from repro.streaming import JigsawsStream, stream_fit_classifier
    >>> from repro.streaming.train import RecordEncode
    >>> from repro.hdc.hypervector import random_hypervectors
    >>> from repro.basis import CircularBasis
    >>> stream = JigsawsStream("suturing", seed=3, chunk_size=40,
    ...                        samples_per_gesture=4)
    >>> emb = CircularBasis(10, 128, seed=1).circular_embedding(period=6.3)
    >>> enc = BatchEncoder(random_hypervectors(18, 128, seed=2), emb,
    ...                    tie_break="zeros")
    >>> merged = CentroidClassifier(128, tie_break="zeros", seed=0)
    >>> stats = ClusterCoordinator(merged, stream, RecordEncode(enc),
    ...                            workers=2).run()
    >>> serial = CentroidClassifier(128, tie_break="zeros", seed=0)
    >>> _ = stream_fit_classifier(serial, enc, stream)
    >>> stats.rows == 60 and all(
    ...     bool(np.array_equal(merged.class_vector(c), serial.class_vector(c)))
    ...     for c in serial.classes)
    True
    """

    def __init__(
        self,
        model,
        source: ChunkSource,
        encode: Callable,
        workers: Union[int, None] = None,
        hook: Callable | None = None,
        max_restarts: int = 5,
        mp_start: Union[str, None] = None,
        poll_interval: float = 0.05,
        ingest: Union[str, None] = None,
    ) -> None:
        self.model = model
        self.source = source
        self.encode = encode
        # Ingest kernel backend shipped to every worker plan (None defers
        # to REPRO_INGEST_KERNEL / "auto"); all backends produce
        # byte-identical deltas, so this only moves throughput.
        self.ingest = ingest
        self.workers = default_cluster_workers(workers)
        if workers is not None and (
            not isinstance(workers, int) or isinstance(workers, bool) or workers < 1
        ):
            raise InvalidParameterError(
                f"cluster workers must be a positive integer, got {workers!r}"
            )
        if max_restarts < 0:
            raise InvalidParameterError(
                f"max_restarts must be non-negative, got {max_restarts}"
            )
        self.hook = hook
        self.max_restarts = max_restarts
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context(mp_start or default_start_method())
        self._proto = worker_proto(model)
        # merge state (rebuilt by run())
        self._frontier = 0
        self._buffer: dict[int, tuple[int, object]] = {}
        self._expected_total: Union[int, None] = None
        self._states: dict[int, _WorkerState] = {}

    # -- cursor ----------------------------------------------------------------
    def _first_assigned(self, worker_id: int, at: int) -> int:
        """Smallest chunk index ``>= at`` assigned to ``worker_id``."""
        return at + ((worker_id - at) % self.workers)

    def per_worker_cursor(self) -> dict[str, int]:
        """Replay cursor per worker, relative to the *absorbed* frontier.

        The checkpointed model has absorbed exactly chunks
        ``[0, frontier)`` (absorption is strictly in order), so worker
        ``w`` must replay from its first assigned chunk at or past the
        frontier.  Deltas sitting in the reorder buffer are deliberately
        *not* credited — they exist only in coordinator memory and die
        with a coordinator crash, which is the event this cursor exists
        to survive.
        """
        return {
            str(w): self._first_assigned(w, self._frontier)
            for w in range(self.workers)
        }

    def _next_unreceived(self, worker_id: int) -> int:
        """Smallest assigned chunk neither absorbed nor buffered.

        The *in-flight* restart cursor: buffered deltas were fully
        received from the dead incarnation and stay valid, so the
        replacement skips past them.
        """
        index = self._first_assigned(worker_id, self._frontier)
        while index in self._buffer:
            index += self.workers
        return index

    # -- worker lifecycle ------------------------------------------------------
    def _spawn(self, worker_id: int, incarnation: int, start_index: int) -> _WorkerState:
        recv_end, send_end = self._ctx.Pipe(duplex=False)
        plan = WorkerPlan(
            worker_id=worker_id,
            num_workers=self.workers,
            source=self.source,
            encode=self.encode,
            proto=self._proto,
            start_index=start_index,
            incarnation=incarnation,
            hook=self.hook,
            ingest=self.ingest,
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(plan, send_end),
            name=f"repro-cluster-w{worker_id}i{incarnation}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the send end so a worker death
        # surfaces as EOF on the receive end instead of a silent hang.
        send_end.close()
        return _WorkerState(process=process, conn=recv_end, incarnation=incarnation)

    def _handle(self, message: object) -> None:
        if not isinstance(message, tuple) or not message:
            raise ClusterError(f"malformed worker message: {message!r}")
        kind = message[0]
        if kind == "delta":
            _, worker_id, _incarnation, index, rows, delta = message
            if index < self._frontier or index in self._buffer:
                return  # replayed duplicate: already absorbed or buffered
            self._buffer[index] = (int(rows), delta)
        elif kind == "done":
            _, worker_id, _incarnation, total = message
            total = int(total)
            if self._expected_total is not None and total != self._expected_total:
                raise ClusterError(
                    f"workers disagree about the stream length: "
                    f"{self._expected_total} vs {total} (worker {worker_id})"
                )
            self._expected_total = total
            state = self._states.get(worker_id)
            if state is not None:
                state.done = True
        elif kind == "error":
            _, worker_id, _incarnation, detail = message
            raise ClusterError(f"worker {worker_id} failed: {detail}")
        else:
            raise ClusterError(f"unknown worker message kind {kind!r}")

    def _drain_conn(self, state: _WorkerState) -> None:
        """Pull every message still queued on a (possibly dead) pipe."""
        if state.conn is None:
            return
        while True:
            try:
                if not state.conn.poll(0):
                    return
                self._handle(state.conn.recv())
            except (EOFError, OSError, ValueError):
                # EOF, a torn mid-send message, or an unpicklable tail —
                # this channel is spent either way.
                try:
                    state.conn.close()
                finally:
                    state.conn = None
                return

    def _absorb_ready(
        self,
        stats: StreamStats,
        on_chunk: Union[Callable[[StreamStats], None], None],
    ) -> None:
        while self._frontier in self._buffer:
            rows, delta = self._buffer.pop(self._frontier)
            absorb_delta(self.model, delta)
            self._frontier += 1
            stats.absorb(rows)
            if on_chunk is not None:
                on_chunk(stats)

    def _finished(self) -> bool:
        return (
            self._expected_total is not None
            and self._frontier >= self._expected_total
        )

    def _reap(self) -> None:
        """Detect dead workers; restart them from their chunk cursor."""
        for worker_id, state in self._states.items():
            if state.done:
                continue
            alive = state.process.is_alive()
            if alive and state.conn is not None:
                continue
            # The pipe may still hold complete messages the dead worker
            # sent before the kill (including its "done") — credit them
            # before deciding anything.
            self._drain_conn(state)
            if state.done:
                continue
            if alive:
                continue  # conn torn but process alive: next poll settles it
            restart_from = self._next_unreceived(worker_id)
            if self._expected_total is not None and restart_from >= self._expected_total:
                # Everything this worker owed has been received; nothing
                # to replay, so a restart would be pure waste.
                state.done = True
                continue
            if state.restarts >= self.max_restarts:
                raise ClusterError(
                    f"worker {worker_id} died {state.restarts + 1} times "
                    f"(restart budget {self.max_restarts}); giving up at "
                    f"chunk cursor {restart_from}"
                )
            restarts = state.restarts + 1
            replacement = self._spawn(worker_id, state.incarnation + 1, restart_from)
            replacement.restarts = restarts
            self._states[worker_id] = replacement

    def _cleanup(self) -> None:
        for state in self._states.values():
            if state.conn is not None:
                try:
                    state.conn.close()
                except Exception:
                    pass
                state.conn = None
            process = state.process
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stubborn straggler
                process.kill()
                process.join(timeout=2.0)

    # -- the run loop ----------------------------------------------------------
    def run(
        self,
        on_chunk: Union[Callable[[StreamStats], None], None] = None,
        start: int = 0,
        per_worker: Union[dict, None] = None,
        stats: Union[StreamStats, None] = None,
    ) -> StreamStats:
        """Ingest the whole stream; return the pass's :class:`StreamStats`.

        ``start`` is the absorbed-chunk frontier of a resumed run (the
        checkpoint cursor's ``chunks``); ``per_worker`` is the persisted
        per-worker cursor map, honoured when it is consistent with the
        frontier (replaying *earlier* than required is always safe —
        duplicates dedupe — so an inconsistent entry falls back to the
        frontier-derived cursor rather than risking a lost chunk).
        ``on_chunk`` runs after every absorbed chunk, in global chunk
        order — checkpoints hook here exactly as in the single-process
        reducer.  ``stats`` pre-seeds the accounting for resumed runs.
        """
        if start < 0:
            raise InvalidParameterError(f"start must be non-negative, got {start}")
        stats = stats if stats is not None else StreamStats()
        self._frontier = int(start)
        self._buffer = {}
        self._expected_total = None
        self._states = {}
        try:
            for worker_id in range(self.workers):
                derived = self._first_assigned(worker_id, self._frontier)
                cursor = derived
                if per_worker is not None:
                    stored = per_worker.get(str(worker_id), derived)
                    if (
                        isinstance(stored, int)
                        and 0 <= stored <= derived
                        and stored % self.workers == worker_id
                    ):
                        cursor = stored
                self._states[worker_id] = self._spawn(worker_id, 0, cursor)
            while True:
                conns = [
                    state.conn
                    for state in self._states.values()
                    if state.conn is not None
                ]
                if conns:
                    ready = multiprocessing.connection.wait(
                        conns, timeout=self.poll_interval
                    )
                    for conn in ready:
                        state = next(
                            s for s in self._states.values() if s.conn is conn
                        )
                        try:
                            self._handle(conn.recv())
                        except (EOFError, OSError, ValueError):
                            try:
                                conn.close()
                            finally:
                                state.conn = None
                else:
                    time.sleep(self.poll_interval)
                self._absorb_ready(stats, on_chunk)
                if self._finished():
                    break
                self._reap()
                if (
                    all(state.done for state in self._states.values())
                    and not self._finished()
                    and self._frontier not in self._buffer
                ):
                    raise ClusterError(
                        f"stream gap at chunk {self._frontier}: all workers "
                        f"done but only {self._frontier} of "
                        f"{self._expected_total} chunks absorbed"
                    )
        finally:
            self._cleanup()
        return stats
