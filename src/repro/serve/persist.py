"""Versioned model persistence: ``save_model`` / ``load_model``.

A trained HDC model is tiny — bit-packed hypervectors cost one bit per
dimension and the trainable state is integer count tables — so a saved
model is a few hundred kilobytes even at the paper's ``d = 10,000``.
This module gives every servable object in the library a portable,
versioned on-disk form:

* **container** — a single ``.npz`` file (numpy's zip archive, no
  pickling) holding named ``uint8``/``int64`` arrays plus one JSON
  manifest entry (``__manifest__``) describing what the arrays mean;
* **coverage** — :class:`~repro.learning.classifier.CentroidClassifier`,
  :class:`~repro.learning.regression.HDRegressor`,
  :class:`~repro.hdc.memory.ItemMemory`,
  :class:`~repro.hdc.packed.BundleAccumulator`, every
  :class:`~repro.basis.base.BasisSet` construction (random, level,
  legacy-level, circular, scatter), :class:`~repro.basis.base.Embedding`
  and the :class:`~repro.serve.pipeline.TrainedPipeline` container;
* **bit identity** — hypervector tables are stored packed
  (``numpy.packbits`` layout) and integer accumulators verbatim, and the
  tie-breaking RNG state is captured, so a reloaded model answers every
  query with exactly the bits the in-memory model would have produced —
  including any *future* random tie draws;
* **atomicity** — files are written to a temporary sibling and
  ``os.replace``d into place, so a crash mid-save never corrupts an
  existing model (the :meth:`~repro.serve.online.OnlineLearner.checkpoint`
  contract).

The manifest format (fields, versioning and compatibility policy) is
specified in ``docs/SERVING.md``.

Example
-------
>>> import numpy as np, tempfile, os
>>> from repro.basis import CircularBasis
>>> from repro.serve import save_model, load_model
>>> basis = CircularBasis(size=8, dim=64, seed=5)
>>> path = os.path.join(tempfile.mkdtemp(), "basis.npz")
>>> _ = save_model(basis, path)
>>> restored = load_model(path)
>>> bool(np.array_equal(restored.vectors, basis.vectors))
True
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Any, Hashable

import numpy as np

from ..basis.base import BasisSet, Embedding
from ..basis.circular import CircularBasis
from ..basis.level import LevelBasis
from ..basis.level_legacy import LegacyLevelBasis
from ..basis.quantize import CircularDiscretizer, Discretizer, LinearDiscretizer
from ..basis.random_basis import RandomBasis
from ..basis.scatter import ScatterBasis
from ..exceptions import ModelFormatError
from ..hdc.hypervector import BIT_DTYPE
from ..hdc.memory import ItemMemory
from ..hdc.packed import BundleAccumulator, PackedHV
from ..learning.classifier import CentroidClassifier
from ..learning.regression import HDRegressor
from .pipeline import TrainedPipeline

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "FORMAT_MINOR",
    "MANIFEST_KEY",
    "save_model",
    "load_model",
    "load_checkpoint",
    "describe_model",
]

#: The ``format`` field every manifest must carry.
FORMAT_NAME = "repro-hdc-model"

#: Current container version.  Loaders accept any file with the same
#: major version; see docs/SERVING.md for the compatibility policy.
FORMAT_VERSION = 1

#: Minor revision within :data:`FORMAT_VERSION`, for additive manifest
#: fields readers may ignore.  Minor 1 added the optional top-level
#: ``cursor`` entry (streaming/cluster resume state — see
#: ``docs/DISTRIBUTED.md``); version-1 loaders that predate it read
#: only ``type``/``payload`` and are unaffected.
FORMAT_MINOR = 1

#: npz entry holding the UTF-8 JSON manifest.
MANIFEST_KEY = "__manifest__"


# -- small shared helpers -----------------------------------------------------

def _encode_label(label: Hashable) -> dict[str, Any]:
    """Tag a class label / memory key with its type for JSON transport."""
    if isinstance(label, (bool, np.bool_)):
        return {"t": "bool", "v": bool(label)}
    if isinstance(label, (int, np.integer)):
        return {"t": "int", "v": int(label)}
    if isinstance(label, (float, np.floating)):
        return {"t": "float", "v": float(label)}
    if isinstance(label, str):
        return {"t": "str", "v": label}
    raise ModelFormatError(
        f"cannot persist label/key of type {type(label).__name__}; "
        "supported: str, int, float, bool"
    )


def _decode_label(node: dict[str, Any]) -> Hashable:
    kind, value = node.get("t"), node.get("v")
    if kind == "bool":
        return bool(value)
    if kind == "int":
        return int(value)
    if kind == "float":
        return float(value)
    if kind == "str":
        return str(value)
    raise ModelFormatError(f"unknown label tag {kind!r} in manifest")


#: Bit generators whose state the container may carry.  An allowlist
#: (not getattr over ``np.random``) so crafted files can neither call
#: arbitrary attributes nor escape the ModelFormatError contract; the
#: save path enforces the same list symmetrically.
_BIT_GENERATORS = ("PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937")


def _json_plain(obj: Any) -> Any:
    """Recursively strip numpy containers/scalars out of an RNG state.

    PCG64-family states are already plain ints, but MT19937/Philox/SFC64
    keep key arrays as ndarrays; every allowlisted generator's state
    setter accepts the listified form back (covered by round-trip tests).
    """
    if isinstance(obj, dict):
        return {key: _json_plain(value) for key, value in obj.items()}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    return obj


def _rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """The bit-generator state, made JSON-serialisable."""
    state = _json_plain(rng.bit_generator.state)
    name = state.get("bit_generator")
    if name not in _BIT_GENERATORS:
        raise ModelFormatError(
            f"cannot persist RNG backed by {name!r}; supported bit "
            f"generators: {_BIT_GENERATORS}"
        )
    return state


def _restore_rng(state: dict[str, Any]) -> np.random.Generator:
    name = state.get("bit_generator", "PCG64")
    if name not in _BIT_GENERATORS or not hasattr(np.random, name):
        raise ModelFormatError(f"unknown bit generator {name!r} in manifest")
    try:
        bitgen = getattr(np.random, name)()
        bitgen.state = state
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(f"malformed RNG state in manifest: {exc}") from exc
    return np.random.Generator(bitgen)


def _pack_table(bits: np.ndarray) -> np.ndarray:
    """Bit-pack an unpacked ``(…, d)`` table for storage."""
    return np.packbits(np.asarray(bits, dtype=BIT_DTYPE), axis=-1)


def _unpack_table(data: np.ndarray, dim: int) -> np.ndarray:
    return np.unpackbits(data, axis=-1, count=dim).astype(BIT_DTYPE, copy=False)


def _get_array(arrays: dict[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return arrays[name]
    except KeyError:
        raise ModelFormatError(f"model container is missing array {name!r}") from None


# -- basis sets ---------------------------------------------------------------

_BASIS_TYPES: dict[type, str] = {
    RandomBasis: "random",
    LevelBasis: "level",
    LegacyLevelBasis: "level-legacy",
    CircularBasis: "circular",
    ScatterBasis: "scatter",
}
_BASIS_BY_NAME = {name: cls for cls, name in _BASIS_TYPES.items()}


def _save_basis(basis: BasisSet, arrays: dict, prefix: str) -> dict[str, Any]:
    cls = type(basis)
    if cls not in _BASIS_TYPES:
        raise ModelFormatError(
            f"no serializer registered for basis type {cls.__name__}; "
            f"supported: {sorted(c.__name__ for c in _BASIS_TYPES)}"
        )
    payload: dict[str, Any] = {
        "basis_type": _BASIS_TYPES[cls],
        "size": len(basis),
        "dim": basis.dim,
    }
    arrays[prefix + "vectors"] = _pack_table(basis.vectors)
    if isinstance(basis, LevelBasis):
        payload["r"] = basis.r
        payload["profile_name"] = basis.profile_name
        if basis._positions is not None:
            arrays[prefix + "positions"] = np.asarray(basis._positions, dtype=np.float64)
    elif isinstance(basis, CircularBasis):
        payload["r"] = basis.r
        payload["step"] = basis._step
        payload["half"] = basis._half
    elif isinstance(basis, ScatterBasis):
        payload["flip_mode"] = basis.flip_mode
        arrays[prefix + "flip_counts"] = np.asarray(basis.flip_counts, dtype=np.int64)
    elif isinstance(basis, LegacyLevelBasis):
        arrays[prefix + "cumulative_flips"] = np.asarray(
            basis.cumulative_flips, dtype=np.int64
        )
    return payload


def _load_basis(payload: dict, arrays: dict, prefix: str) -> BasisSet:
    name = payload.get("basis_type")
    cls = _BASIS_BY_NAME.get(name)
    if cls is None:
        raise ModelFormatError(f"unknown basis type {name!r} in manifest")
    dim = int(payload["dim"])
    packed = _get_array(arrays, prefix + "vectors")
    vectors = _unpack_table(packed, dim)
    if vectors.shape[0] != int(payload["size"]):
        raise ModelFormatError(
            f"basis table has {vectors.shape[0]} rows, manifest says {payload['size']}"
        )
    # Bypass the stochastic constructors: the generated table *is* the
    # basis, so restore it verbatim and reattach the per-type metadata
    # that the analysis methods (expected_distance etc.) consult.
    basis = cls.__new__(cls)
    BasisSet.__init__(basis, vectors)
    basis._packed = PackedHV(np.ascontiguousarray(packed), dim)
    if cls is LevelBasis:
        basis.r = float(payload["r"])
        basis._profile_name = payload["profile_name"]
        positions = arrays.get(prefix + "positions")
        basis._positions = None if positions is None else np.asarray(positions)
    elif cls is CircularBasis:
        basis.r = float(payload["r"])
        basis._step = int(payload["step"])
        basis._half = int(payload["half"])
    elif cls is ScatterBasis:
        basis.flip_mode = payload["flip_mode"]
        basis._flip_counts = np.asarray(_get_array(arrays, prefix + "flip_counts"))
    elif cls is LegacyLevelBasis:
        basis._cumulative_flips = np.asarray(
            _get_array(arrays, prefix + "cumulative_flips")
        )
    return basis


# -- discretizers / embeddings ------------------------------------------------

def _save_discretizer(disc: Discretizer) -> dict[str, Any]:
    if type(disc) is LinearDiscretizer:
        return {
            "kind": "linear",
            "low": disc.low,
            "high": disc.high,
            "size": disc.size,
            "clip": disc.clip,
        }
    if type(disc) is CircularDiscretizer:
        return {
            "kind": "circular",
            "size": disc.size,
            "low": disc.low,
            "period": disc.period,
        }
    raise ModelFormatError(
        f"no serializer registered for discretizer type {type(disc).__name__}"
    )


def _load_discretizer(payload: dict) -> Discretizer:
    kind = payload.get("kind")
    if kind == "linear":
        return LinearDiscretizer(
            payload["low"], payload["high"], int(payload["size"]), clip=payload["clip"]
        )
    if kind == "circular":
        return CircularDiscretizer(
            int(payload["size"]), low=payload["low"], period=payload["period"]
        )
    raise ModelFormatError(f"unknown discretizer kind {kind!r} in manifest")


def _save_embedding(emb: Embedding, arrays: dict, prefix: str) -> dict[str, Any]:
    return {
        "discretizer": _save_discretizer(emb.discretizer),
        "basis": _save_basis(emb.basis, arrays, prefix + "basis/"),
    }


def _load_embedding(payload: dict, arrays: dict, prefix: str) -> Embedding:
    basis = _load_basis(payload["basis"], arrays, prefix + "basis/")
    return Embedding(basis, _load_discretizer(payload["discretizer"]))


# -- item memory --------------------------------------------------------------

def _save_item_memory(mem: ItemMemory, arrays: dict, prefix: str) -> dict[str, Any]:
    keys = mem.keys()
    if keys:
        arrays[prefix + "rows"] = np.stack(
            [mem.get_packed(k).data for k in keys], axis=0
        )
    return {"dim": mem.dim, "keys": [_encode_label(k) for k in keys]}


def _load_item_memory(payload: dict, arrays: dict, prefix: str) -> ItemMemory:
    mem = ItemMemory(int(payload["dim"]))
    keys = [_decode_label(node) for node in payload.get("keys", [])]
    if keys:
        rows = _get_array(arrays, prefix + "rows")
        if rows.shape[0] != len(keys):
            raise ModelFormatError(
                f"item memory has {rows.shape[0]} rows for {len(keys)} keys"
            )
        for key, row in zip(keys, rows):
            mem.add(key, PackedHV(np.ascontiguousarray(row), mem.dim))
    return mem


# -- bundle accumulator -------------------------------------------------------

def _save_accumulator(acc: BundleAccumulator, arrays: dict, prefix: str) -> dict[str, Any]:
    arrays[prefix + "counts"] = np.asarray(acc.counts, dtype=np.int64)
    return {"dim": acc.dim, "total": acc.total}


def _restore_accumulator(dim: int, counts: np.ndarray, total: int) -> BundleAccumulator:
    """The one place accumulator state is rebuilt from raw arrays."""
    acc = BundleAccumulator(dim)
    counts = np.asarray(counts)
    if counts.shape != (acc.dim,):
        raise ModelFormatError(
            f"accumulator counts have shape {counts.shape}, expected ({acc.dim},)"
        )
    acc._counts[:] = counts
    acc._total = int(total)
    return acc


def _load_accumulator(payload: dict, arrays: dict, prefix: str) -> BundleAccumulator:
    return _restore_accumulator(
        int(payload["dim"]), _get_array(arrays, prefix + "counts"), payload["total"]
    )


# -- centroid classifier ------------------------------------------------------

def _save_classifier(
    clf: CentroidClassifier, arrays: dict, prefix: str
) -> dict[str, Any]:
    classes = clf.classes
    if classes:
        # Freeze the prototypes now: materialisation consumes the
        # tie-break RNG, so doing it before the state snapshot makes the
        # reloaded model (prototypes + post-draw RNG) bit-identical to
        # the in-memory one for every future call.
        clf.prepare()
        arrays[prefix + "counts"] = np.stack(
            [clf._accumulators[c].counts for c in classes], axis=0
        )
        arrays[prefix + "totals"] = np.asarray(
            [clf._accumulators[c].total for c in classes], dtype=np.int64
        )
        arrays[prefix + "prototypes"] = clf._packed_table.data
    return {
        "dim": clf.dim,
        "tie_break": clf._tie_break,
        "rng_state": _rng_state(clf._rng),
        "classes": [_encode_label(c) for c in classes],
    }


def _load_classifier(payload: dict, arrays: dict, prefix: str) -> CentroidClassifier:
    clf = CentroidClassifier(int(payload["dim"]), tie_break=payload["tie_break"])
    clf._rng = _restore_rng(payload["rng_state"])
    classes = [_decode_label(node) for node in payload.get("classes", [])]
    if classes:
        counts = _get_array(arrays, prefix + "counts")
        totals = _get_array(arrays, prefix + "totals")
        prototypes = _get_array(arrays, prefix + "prototypes")
        if counts.shape != (len(classes), clf.dim) or totals.shape != (len(classes),):
            raise ModelFormatError(
                f"classifier state shapes {counts.shape}/{totals.shape} do not "
                f"match {len(classes)} classes at dim {clf.dim}"
            )
        for row, (label, total) in enumerate(zip(classes, totals)):
            clf._accumulators[label] = _restore_accumulator(
                clf.dim, counts[row], total
            )
        if prototypes.shape[0] != len(classes):
            raise ModelFormatError(
                f"classifier prototypes table has {prototypes.shape[0]} rows "
                f"for {len(classes)} classes"
            )
        table = PackedHV(np.ascontiguousarray(prototypes), clf.dim)
        clf._packed_table = table
        clf._class_order = list(classes)
        clf._class_vectors = dict(zip(classes, table.unpack()))
    return clf


# -- HD regressor -------------------------------------------------------------

def _save_regressor(model: HDRegressor, arrays: dict, prefix: str) -> dict[str, Any]:
    model.prepare()  # freeze the binary model before snapshotting the RNG
    materialised = model._packed_model is not None
    if materialised:
        arrays[prefix + "model"] = model._packed_model.data
    arrays[prefix + "counts"] = np.asarray(model._bundle.counts, dtype=np.int64)
    return {
        "dim": model.dim,
        "decode": model.decode_mode,
        "model_mode": model.model_mode,
        "tie_break": model._tie_break,
        "rng_state": _rng_state(model._rng),
        "total": model._bundle.total,
        "materialised": materialised,
        "label_embedding": _save_embedding(
            model.label_embedding, arrays, prefix + "label_embedding/"
        ),
    }


def _load_regressor(payload: dict, arrays: dict, prefix: str) -> HDRegressor:
    embedding = _load_embedding(
        payload["label_embedding"], arrays, prefix + "label_embedding/"
    )
    model = HDRegressor(
        embedding,
        tie_break=payload["tie_break"],
        decode=payload["decode"],
        model=payload["model_mode"],
    )
    model._rng = _restore_rng(payload["rng_state"])
    model._bundle = _restore_accumulator(
        model.dim, _get_array(arrays, prefix + "counts"), payload["total"]
    )
    if payload.get("materialised"):
        packed = PackedHV(
            np.ascontiguousarray(_get_array(arrays, prefix + "model")), model.dim
        )
        model._packed_model = packed
        model._model = packed.unpack()
    return model


# -- trained pipeline ---------------------------------------------------------

def _save_pipeline(pipe: TrainedPipeline, arrays: dict, prefix: str) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "kind": pipe.kind,
        "tie_break": pipe.tie_break,
        "encode_seed": pipe.encode_seed,
        "num_features": pipe.num_features,
        "metadata": dict(pipe.metadata),
        "embedding": _save_embedding(pipe.embedding, arrays, prefix + "embedding/"),
        "model": _save_object(pipe.model, arrays, prefix + "model/"),
        "has_keys": pipe.keys is not None,
    }
    if pipe.keys is not None:
        arrays[prefix + "keys"] = _pack_table(pipe.keys)
    return payload


def _load_pipeline(payload: dict, arrays: dict, prefix: str) -> TrainedPipeline:
    embedding = _load_embedding(payload["embedding"], arrays, prefix + "embedding/")
    model = _load_object(payload["model"], arrays, prefix + "model/")
    keys = None
    if payload.get("has_keys"):
        keys = _unpack_table(_get_array(arrays, prefix + "keys"), embedding.dim)
    return TrainedPipeline(
        kind=payload["kind"],
        model=model,
        embedding=embedding,
        keys=keys,
        tie_break=payload["tie_break"],
        encode_seed=payload["encode_seed"],
        metadata=dict(payload.get("metadata", {})),
    )


# -- registry / container -----------------------------------------------------

_SAVERS = {
    CentroidClassifier: ("centroid_classifier", _save_classifier),
    HDRegressor: ("hd_regressor", _save_regressor),
    ItemMemory: ("item_memory", _save_item_memory),
    BundleAccumulator: ("bundle_accumulator", _save_accumulator),
    Embedding: ("embedding", _save_embedding),
    TrainedPipeline: ("pipeline", _save_pipeline),
}

_LOADERS = {
    "centroid_classifier": _load_classifier,
    "hd_regressor": _load_regressor,
    "item_memory": _load_item_memory,
    "bundle_accumulator": _load_accumulator,
    "embedding": _load_embedding,
    "pipeline": _load_pipeline,
    "basis": _load_basis,
}


def _save_object(obj: Any, arrays: dict, prefix: str) -> dict[str, Any]:
    """Serialize any supported object to ``{"type", "payload"}``."""
    if isinstance(obj, BasisSet):
        return {"type": "basis", "payload": _save_basis(obj, arrays, prefix)}
    entry = _SAVERS.get(type(obj))
    if entry is None:
        raise ModelFormatError(
            f"no serializer registered for {type(obj).__name__}; supported: "
            f"{sorted(c.__name__ for c in _SAVERS)} and BasisSet subclasses"
        )
    type_name, saver = entry
    return {"type": type_name, "payload": saver(obj, arrays, prefix)}


def _load_object(node: dict[str, Any], arrays: dict, prefix: str) -> Any:
    loader = _LOADERS.get(node.get("type"))
    if loader is None:
        raise ModelFormatError(f"unknown model type {node.get('type')!r} in manifest")
    return loader(node["payload"], arrays, prefix)


def save_model(
    model: Any, path: str | os.PathLike, *, cursor: dict[str, Any] | None = None
) -> Path:
    """Persist a supported model object to ``path`` (npz container).

    The write is atomic: the container is assembled in a temporary
    sibling file and moved into place with ``os.replace``, so a crash
    can never leave a half-written model where a good one used to be.
    Classifiers and binary-model regressors are materialised
    (:meth:`prepare`) as part of saving, so the frozen prototypes land
    in the file and the reloaded model predicts bit-identically.

    ``cursor`` (optional) is a JSON-serialisable dict recorded verbatim
    as the manifest's top-level ``cursor`` entry — the streaming/cluster
    subsystems store their chunk replay position there so an interrupted
    ``train --stream`` resumes from the checkpoint
    (:func:`load_checkpoint`; format in ``docs/DISTRIBUTED.md``).
    :func:`load_model` ignores it, so a cursor-bearing checkpoint is a
    perfectly ordinary model file.

    Returns the path written.

    Example
    -------
    >>> import numpy as np, tempfile, os
    >>> from repro.hdc import ItemMemory
    >>> from repro.serve import save_model, load_model
    >>> mem = ItemMemory(dim=16)
    >>> mem.add("sensor-a", np.zeros(16, dtype=np.uint8))
    >>> path = os.path.join(tempfile.mkdtemp(), "memory.npz")
    >>> _ = save_model(mem, path)
    >>> load_model(path).keys()
    ['sensor-a']
    """
    arrays: dict[str, np.ndarray] = {}
    node = _save_object(model, arrays, "")
    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "minor": FORMAT_MINOR,
        "type": node["type"],
        "payload": node["payload"],
    }
    if cursor is not None:
        try:
            manifest["cursor"] = json.loads(json.dumps(cursor))
        except (TypeError, ValueError) as exc:
            raise ModelFormatError(
                f"checkpoint cursor is not JSON-serialisable: {exc}"
            ) from exc
    blob = json.dumps(manifest, sort_keys=True).encode("utf-8")
    arrays[MANIFEST_KEY] = np.frombuffer(blob, dtype=np.uint8)

    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent or ".", suffix=".npz.tmp")
    try:
        # mkstemp creates 0600 files; give the model the permissions a
        # plain open() would, so another service account can load it.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "wb") as handle:
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            handle.write(buffer.getvalue())
        os.replace(tmp, target)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return target


def _read_container(path: str | os.PathLike) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ModelFormatError(f"cannot read model container {path}: {exc}") from exc
    if MANIFEST_KEY not in arrays:
        raise ModelFormatError(f"{path} has no {MANIFEST_KEY} entry; not a model file")
    try:
        manifest = json.loads(bytes(arrays.pop(MANIFEST_KEY)).decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ModelFormatError(f"{path} has a malformed manifest: {exc}") from exc
    if manifest.get("format") != FORMAT_NAME:
        raise ModelFormatError(
            f"{path} declares format {manifest.get('format')!r}, expected {FORMAT_NAME!r}"
        )
    try:
        version = int(manifest.get("version", -1))
    except (TypeError, ValueError) as exc:
        raise ModelFormatError(
            f"{path} has a malformed version field: {manifest.get('version')!r}"
        ) from exc
    if version > FORMAT_VERSION:
        raise ModelFormatError(
            f"{path} is format version {manifest.get('version')}; this library "
            f"reads up to version {FORMAT_VERSION} — upgrade repro-hdc to load it"
        )
    return manifest, arrays


def load_model(path: str | os.PathLike) -> Any:
    """Reconstruct a model object saved by :func:`save_model`.

    The returned object is bit-identical to the one that was saved:
    hypervector tables, integer accumulators and the tie-break RNG state
    all round-trip exactly, so predictions (and future stochastic tie
    draws) match the original in-memory model.

    Raises :class:`~repro.exceptions.ModelFormatError` for unreadable
    containers, malformed manifests or versions newer than this library.

    Example
    -------
    >>> import numpy as np, tempfile, os
    >>> from repro.basis import LevelBasis
    >>> basis = LevelBasis(4, 32, seed=2)
    >>> path = os.path.join(tempfile.mkdtemp(), "levels.npz")
    >>> _ = save_model(basis, path)
    >>> bool(np.array_equal(load_model(path).vectors, basis.vectors))
    True
    """
    manifest, arrays = _read_container(path)
    try:
        return _load_object(
            {"type": manifest.get("type"), "payload": manifest.get("payload")},
            arrays,
            "",
        )
    except ModelFormatError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        # Any structural surprise inside the typed loaders (missing
        # payload fields, wrong value types) is a malformed file, not a
        # caller bug — keep the documented error contract.
        raise ModelFormatError(f"{path} has a malformed manifest: {exc!r}") from exc


def load_checkpoint(path: str | os.PathLike) -> tuple[Any, dict[str, Any] | None]:
    """Load a model *and* its resume cursor from a checkpoint file.

    Returns ``(model, cursor)`` where ``cursor`` is the manifest's
    ``cursor`` entry (``None`` for plain model files saved without one).
    The model object is exactly what :func:`load_model` would return;
    the cursor is what ``train --stream --resume`` and the ingest
    cluster's failover path feed back into
    :func:`repro.streaming.train.train_pipeline_stream` to replay only
    the chunks the checkpoint has not absorbed yet.

    Raises :class:`~repro.exceptions.ModelFormatError` (naming the file)
    for unreadable or corrupt containers — callers recovering a crashed
    run should treat that as "fall back to the previous intact
    checkpoint", which the atomic tmp + ``os.replace`` write protocol
    guarantees is the file actually sitting at ``path``.

    Example
    -------
    >>> import tempfile, os
    >>> from repro.hdc import BundleAccumulator
    >>> path = os.path.join(tempfile.mkdtemp(), "ckpt.npz")
    >>> _ = save_model(BundleAccumulator(8), path, cursor={"chunks": 3})
    >>> model, cursor = load_checkpoint(path)
    >>> (model.dim, cursor["chunks"])
    (8, 3)
    """
    manifest, arrays = _read_container(path)
    try:
        model = _load_object(
            {"type": manifest.get("type"), "payload": manifest.get("payload")},
            arrays,
            "",
        )
    except ModelFormatError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ModelFormatError(f"{path} has a malformed manifest: {exc!r}") from exc
    cursor = manifest.get("cursor")
    if cursor is not None and not isinstance(cursor, dict):
        raise ModelFormatError(
            f"{path} has a malformed cursor entry: expected an object, "
            f"got {type(cursor).__name__}"
        )
    return model, cursor


def describe_model(path: str | os.PathLike) -> dict[str, Any]:
    """Return the manifest of a saved model without reconstructing it.

    Useful for quick inspection (model kind, dimensionality, classes)
    and for the ``serve`` CLI's startup banner.

    Example
    -------
    >>> import tempfile, os
    >>> from repro.basis import RandomBasis
    >>> from repro.serve import save_model, describe_model
    >>> path = os.path.join(tempfile.mkdtemp(), "b.npz")
    >>> _ = save_model(RandomBasis(4, 32, seed=0), path)
    >>> info = describe_model(path)
    >>> info["type"], info["payload"]["dim"]
    ('basis', 32)
    """
    manifest, _ = _read_container(path)
    return manifest
