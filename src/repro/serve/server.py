"""Asyncio HTTP front end: many models, micro-batched, backpressured.

``repro serve-http`` turns the single-model stdin/stdout JSONL loop into
a real network tier: one process serves every model in a
:class:`~repro.serve.registry.ModelRegistry` over a small HTTP/1.1 API,
with per-model :class:`~repro.serve.batching.MicroBatcher` scheduling
(concurrent requests coalesce into single kernel calls, bit-identical
to sequential serving) and bounded-queue admission control (HTTP 429 on
overload).  The server is stdlib-only — asyncio streams plus a minimal
HTTP/1.1 reader with keep-alive — so it runs anywhere the library does.

API surface (all request/response bodies are JSON):

===========================================  =================================
``GET /healthz``                             liveness + model names
``GET /metrics``                             Prometheus text exposition:
                                             per-model request/rejection
                                             counters, batch-size and
                                             request-latency histograms
``GET /v1/models``                           registry listing with metadata
``POST /v1/models/<name>:predict``           ``{"features": [...]}`` → one
                                             prediction, or
                                             ``{"records": [[...], ...]}`` →
                                             in-order predictions
``POST /v1/models/<name>:swap``              ``{"path": "model.npz"}`` —
                                             zero-downtime hot swap
===========================================  =================================

Error mapping: malformed requests → 400, unknown model/route → 404,
admission-control rejection → 429 (body carries ``"backpressure": true``
so clients can retry), internal faults → 500.  Every error body is
``{"error": "..."}``.

:class:`ServerThread` runs the whole stack (event loop, server,
batchers) in a background thread — the harness tests, the docs
walkthrough and the concurrency benchmark all drive a real socket
server through it.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import os
import threading
from typing import Any

import numpy as np

from ..exceptions import BackpressureError, InvalidParameterError, ReproError
from .batching import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_S, MicroBatcher
from .registry import ModelRegistry

__all__ = ["ServeServer", "ServerThread", "json_scalar"]

#: Private test hook: seconds to sleep between building a swapped-in
#: engine and flipping the registry pointer.  Lets the hot-swap tests
#: park a server deterministically *mid-swap* (e.g. to ``kill -9`` it
#: there); never set outside tests.
_SWAP_HOLD_ENV = "_REPRO_SERVE_SWAP_HOLD_S"

#: Request bodies above this are rejected outright (1 MiB is ~16k
#: float features — far beyond any legitimate record batch here).
_MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def json_scalar(value: Any) -> Any:
    """Coerce a model prediction to a JSON-serialisable scalar.

    The one canonical scalar mapping shared by the HTTP server, the
    JSONL serve loop, the replay oracle and the benchmarks — responses
    compared across those paths must be identical *as JSON*, so they
    must all serialise through the same function.

    >>> import numpy as np
    >>> json_scalar(np.float64(2.5)), json_scalar(np.int64(3)), json_scalar("g1")
    (2.5, 3, 'g1')
    """
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


def _finite_row(row: Any) -> bool:
    if not isinstance(row, list) or not row:
        return False
    for v in row:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return False
        if not math.isfinite(float(v)):
            return False
    return True


class _HTTPError(Exception):
    """Internal: carries a status + message up to the response writer."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ServeServer:
    """The asyncio serving front end over a model registry.

    Parameters
    ----------
    registry:
        The models to serve.  The server does **not** own the registry —
        close it yourself after :meth:`stop` (the CLI and
        :class:`ServerThread` both do).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    window_ms, max_batch, max_queue:
        Micro-batching knobs forwarded to every per-model
        :class:`~repro.serve.batching.MicroBatcher`; ``None`` resolves
        through the calibration chain.

    Use :meth:`start` / :meth:`stop` from a running event loop, or
    :class:`ServerThread` for a synchronous harness.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        window_ms: float | None = None,
        max_batch: int | None = None,
        max_queue: int | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._window_ms = window_ms
        self._max_batch = max_batch
        self._max_queue = max_queue
        self._server: asyncio.AbstractServer | None = None
        self._batchers: dict[str, MicroBatcher] = {}

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "ServeServer":
        """Bind the socket and spawn one micro-batcher per model."""
        for name in self.registry.names():
            batcher = MicroBatcher(
                self.registry,
                name,
                window_ms=self._window_ms,
                max_batch=self._max_batch,
                max_queue=self._max_queue,
            )
            await batcher.start()
            self._batchers[name] = batcher
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self._requested_port
        )
        return self

    async def stop(self) -> None:
        """Stop accepting, drain every batcher, release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in self._batchers.values():
            await batcher.stop()
        self._batchers.clear()

    async def __aenter__(self) -> "ServeServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    def stats(self) -> dict[str, dict]:
        """Per-model scheduler counters (requests, batches, rejections)."""
        return {name: dict(b.stats) for name, b in self._batchers.items()}

    def _render_metrics(self) -> str:
        """The ``/metrics`` body: Prometheus text exposition format.

        One sample per model per family, rendered straight from the
        batchers' counter dicts — the scheduler's hot path pays one
        integer increment per observation, and the cumulative ``le``
        ladder Prometheus histograms require is computed here, at
        scrape time.
        """
        stats = {name: self._batchers[name].stats for name in sorted(self._batchers)}
        out: list[str] = []

        def counter(metric: str, help_text: str, key: str) -> None:
            out.append(f"# HELP {metric} {help_text}")
            out.append(f"# TYPE {metric} counter")
            for name, s in stats.items():
                out.append(f'{metric}{{model="{name}"}} {s[key]}')

        def histogram(
            metric: str, help_text: str, edges: tuple, bucket_key: str, sum_key: str
        ) -> None:
            out.append(f"# HELP {metric} {help_text}")
            out.append(f"# TYPE {metric} histogram")
            for name, s in stats.items():
                cumulative = 0
                for edge, count in zip(edges, s[bucket_key]):
                    cumulative += count
                    out.append(
                        f'{metric}_bucket{{model="{name}",le="{edge}"}} {cumulative}'
                    )
                cumulative += s[bucket_key][-1]
                out.append(f'{metric}_bucket{{model="{name}",le="+Inf"}} {cumulative}')
                out.append(f'{metric}_sum{{model="{name}"}} {s[sum_key]}')
                out.append(f'{metric}_count{{model="{name}"}} {cumulative}')

        counter(
            "repro_serve_requests_total",
            "Requests admitted to the micro-batch scheduler.",
            "requests",
        )
        counter(
            "repro_serve_rejected_total",
            "Requests rejected with 429 backpressure before queueing.",
            "rejected",
        )
        counter(
            "repro_serve_batches_total",
            "Coalesced batches dispatched as single kernel calls.",
            "batches",
        )
        histogram(
            "repro_serve_request_latency_seconds",
            "Wall time from admission to answer, per request.",
            LATENCY_BUCKETS_S,
            "latency_buckets",
            "latency_seconds_sum",
        )
        histogram(
            "repro_serve_batch_rows",
            "Rows per coalesced batch.",
            BATCH_SIZE_BUCKETS,
            "batch_buckets",
            "batch_rows_sum",
        )
        return "\n".join(out) + "\n"

    # -- HTTP plumbing ---------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                try:
                    status, payload = await self._dispatch(method, path, body)
                except _HTTPError as exc:
                    status, payload = exc.status, exc.payload
                except BackpressureError as exc:
                    status, payload = 429, {"error": str(exc), "backpressure": True}
                except ReproError as exc:
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    status, payload = 500, {"error": f"internal error: {exc}"}
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, _HTTPError):
            pass  # client went away or spoke garbage; drop the connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HTTPError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                return None
            key, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HTTPError(400, "malformed Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body exceeds {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, str):
            # Non-JSON routes (/metrics) hand back ready-made text.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | str]:
        if path == "/healthz":
            if method != "GET":
                raise _HTTPError(405, "healthz is GET-only")
            return 200, {"ok": True, "models": self.registry.names()}
        if path == "/metrics":
            if method != "GET":
                raise _HTTPError(405, "metrics is GET-only")
            return 200, self._render_metrics()
        if path == "/v1/models":
            if method != "GET":
                raise _HTTPError(405, "model listing is GET-only")
            return 200, {"models": self.registry.describe()}
        if path.startswith("/v1/models/"):
            tail = path[len("/v1/models/"):]
            name, sep, action = tail.partition(":")
            if not sep or action not in ("predict", "swap"):
                raise _HTTPError(404, f"unknown route {path!r}")
            if method != "POST":
                raise _HTTPError(405, f"{action} is POST-only")
            if name not in self._batchers:
                raise _HTTPError(404, f"unknown model {name!r}")
            payload = self._parse_body(body)
            if action == "predict":
                return await self._predict(name, payload)
            return await self._swap(name, payload)
        raise _HTTPError(404, f"unknown route {path!r}")

    def _parse_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HTTPError(400, f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return payload

    def _validated_rows(self, name: str, payload: dict) -> tuple[list, bool]:
        """Extract ``(rows, batched)`` from a predict body, fully checked.

        Validation happens *before* admission so a malformed record can
        never poison a coalesced batch: everything the scheduler queues
        is already known to be a finite row of the right arity.
        """
        num_features = self.registry.engine(name).num_features
        if "features" in payload and "records" in payload:
            raise _HTTPError(400, "send either 'features' or 'records', not both")
        if "features" in payload:
            rows, batched = [payload["features"]], False
        elif "records" in payload:
            rows = payload["records"]
            if not isinstance(rows, list) or not rows:
                raise _HTTPError(400, "'records' must be a non-empty list of rows")
            batched = True
        else:
            raise _HTTPError(400, "predict body needs 'features' or 'records'")
        for i, row in enumerate(rows):
            if not _finite_row(row):
                raise _HTTPError(
                    400, f"record {i} must be a list of finite numbers"
                )
            if len(row) != num_features:
                raise _HTTPError(
                    400,
                    f"record {i} has {len(row)} feature(s); "
                    f"model {name!r} takes {num_features}",
                )
        return rows, batched

    async def _predict(self, name: str, payload: dict) -> tuple[int, dict]:
        rows, batched = self._validated_rows(name, payload)
        batcher = self._batchers[name]
        if batched:
            # Submit concurrently: the scheduler coalesces the rows
            # (plus any other in-flight traffic) into shared batches.
            values = await asyncio.gather(*(batcher.submit(row) for row in rows))
            return 200, {
                "model": name,
                "predictions": [json_scalar(v) for v in values],
            }
        value = await batcher.submit(rows[0])
        return 200, {"model": name, "prediction": json_scalar(value)}

    async def _swap(self, name: str, payload: dict) -> tuple[int, dict]:
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise _HTTPError(400, "swap body needs a 'path' string")
        loop = asyncio.get_running_loop()

        def do_swap():
            hold = float(os.environ.get(_SWAP_HOLD_ENV, "0") or 0)
            if hold > 0:  # deterministic mid-swap parking spot for tests
                import time

                time.sleep(hold)
            return self.registry.swap(name, path)

        try:
            entry = await loop.run_in_executor(None, do_swap)
        except ReproError as exc:
            raise _HTTPError(400, f"swap failed: {exc}") from None
        return 200, {
            "model": name,
            "swapped": True,
            "generation": entry.generation,
            "source": entry.source,
        }


class ServerThread:
    """Run a :class:`ServeServer` (and its event loop) in a thread.

    The synchronous harness used by the tests, the docs walkthrough and
    the benchmarks: enter the context manager, get a live socket server,
    talk to it with :meth:`request`, and leave — the loop, the server
    and the batchers are torn down on exit.  The registry is owned by
    the caller unless ``own_registry=True``.

    Example
    -------
    >>> from repro.experiments.config import RegressionConfig
    >>> from repro.experiments.serving import train_regression_pipeline
    >>> from repro.serve import ModelRegistry, ServerThread
    >>> pipe = train_regression_pipeline("circular", config=RegressionConfig(dim=128, seed=3))
    >>> registry = ModelRegistry()
    >>> _ = registry.register("mars", pipe)
    >>> with ServerThread(registry, own_registry=True) as server:
    ...     status, body = server.request("GET", "/healthz")
    >>> status, body["models"]
    (200, ['mars'])
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        window_ms: float | None = None,
        max_batch: int | None = None,
        max_queue: int | None = None,
        own_registry: bool = False,
    ) -> None:
        self.server = ServeServer(
            registry,
            host=host,
            port=port,
            window_ms=window_ms,
            max_batch=max_batch,
            max_queue=max_queue,
        )
        self._own_registry = own_registry
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            self.stop()
            raise self._startup_error
        if self._loop is None:  # pragma: no cover - defensive
            raise RuntimeError("server thread failed to start")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
            self._loop = loop
            self._started.set()
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._started.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
                # The batchers run kernels on the loop's default executor;
                # join its threads or they outlive the server (leak-checked
                # by the serve test suite).
                loop.run_until_complete(loop.shutdown_default_executor())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    def stop(self) -> None:
        """Stop the server and join the loop thread (idempotent)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop = None
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        if self._own_registry:
            self.server.registry.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- convenience -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def request(
        self, method: str, path: str, payload: dict | None = None, timeout: float = 30.0
    ) -> tuple[int, dict]:
        """One synchronous JSON request against the live server.

        Returns ``(status_code, decoded_body)``.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            conn.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            raw = response.read()
            return response.status, json.loads(raw.decode("utf-8"))
        finally:
            conn.close()

    def request_text(
        self, method: str, path: str, timeout: float = 30.0
    ) -> tuple[int, str]:
        """Like :meth:`request` for non-JSON routes (``/metrics``).

        Returns ``(status_code, body_text)``.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request(method, path)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServerThread({self.host}:{self.port})"
