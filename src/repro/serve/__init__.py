"""Model persistence and online inference: train once, serve forever.

Everything upstream of this package produces models that die with the
process; :mod:`repro.serve` is the subsystem that makes them durable and
servable:

* :mod:`repro.serve.persist` — ``save_model`` / ``load_model``, a
  versioned npz + JSON-manifest container covering the classifiers,
  regressors, item memories, accumulators, basis sets, embeddings and
  pipelines, with bit-identical round trips (format spec in
  ``docs/SERVING.md``);
* :mod:`repro.serve.pipeline` — :class:`TrainedPipeline`, the servable
  unit (encoder specification + trained model + provenance);
* :mod:`repro.serve.engine` — :class:`InferenceEngine`, which loads a
  pipeline once and answers single/micro-batched predict calls, with
  optional :class:`~repro.runtime.pool.WorkerPool` sharding;
* :mod:`repro.serve.online` — :class:`OnlineLearner`, incremental
  add/subtract/merge updates on a live model plus atomic checkpoints.

The CLI surface lives one layer up: ``python -m repro.experiments train
--out model.npz`` and ``… serve --model model.npz --input -`` (see
:mod:`repro.experiments.serving` and ``docs/SERVING.md``).
"""

from .engine import InferenceEngine
from .online import OnlineLearner
from .persist import (
    FORMAT_NAME,
    FORMAT_VERSION,
    describe_model,
    load_model,
    save_model,
)
from .pipeline import TrainedPipeline

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "save_model",
    "load_model",
    "describe_model",
    "TrainedPipeline",
    "InferenceEngine",
    "OnlineLearner",
]
