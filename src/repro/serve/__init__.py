"""Model persistence and online inference: train once, serve forever.

Everything upstream of this package produces models that die with the
process; :mod:`repro.serve` is the subsystem that makes them durable and
servable:

* :mod:`repro.serve.persist` — ``save_model`` / ``load_model``, a
  versioned npz + JSON-manifest container covering the classifiers,
  regressors, item memories, accumulators, basis sets, embeddings and
  pipelines, with bit-identical round trips (format spec in
  ``docs/SERVING.md``);
* :mod:`repro.serve.pipeline` — :class:`TrainedPipeline`, the servable
  unit (encoder specification + trained model + provenance);
* :mod:`repro.serve.engine` — :class:`InferenceEngine`, which loads a
  pipeline once and answers single/micro-batched predict calls, with
  optional :class:`~repro.runtime.pool.WorkerPool` sharding;
* :mod:`repro.serve.online` — :class:`OnlineLearner`, incremental
  add/subtract/merge updates on a live model plus atomic checkpoints;
* :mod:`repro.serve.registry` — :class:`ModelRegistry`, named
  multi-model serving with zero-downtime hot swap and lease-based
  drain;
* :mod:`repro.serve.batching` — :class:`MicroBatcher`, the adaptive
  scheduler that coalesces concurrent requests into single kernel
  calls, bit-identical to sequential serving;
* :mod:`repro.serve.procpool` — :class:`ProcPredictPool`, the
  multi-process predict tier: packed model tables published once into a
  shared-memory segment, mapped zero-copy by worker processes, with
  kill-safe segment manifests and SIGKILL-tolerant worker respawn;
* :mod:`repro.serve.server` — :class:`ServeServer` /
  :class:`ServerThread`, the asyncio HTTP front end (multi-model
  routing, 429 backpressure, ``:swap`` endpoint);
* :mod:`repro.serve.replay` — seeded trace generation, concurrent
  replay and the sequential ``predict_one`` oracle used to prove the
  batched path bit-identical.

The CLI surface lives one layer up: ``python -m repro.experiments train
--out model.npz``, ``… serve --model model.npz --input -`` and
``… serve-http --model name=model.npz`` (see
:mod:`repro.experiments.serving` and ``docs/SERVING.md``).
"""

from .batching import MicroBatcher
from .engine import InferenceEngine
from .online import OnlineLearner
from .persist import (
    FORMAT_MINOR,
    FORMAT_NAME,
    FORMAT_VERSION,
    describe_model,
    load_checkpoint,
    load_model,
    save_model,
)
from .pipeline import TrainedPipeline
from .procpool import (
    ProcPredictPool,
    auto_proc_workers,
    default_proc_workers,
    reap_stale_segments,
)
from .registry import EngineLease, ModelRegistry
from .replay import (
    HTTPReplayClient,
    ReplayReport,
    TraceRequest,
    generate_trace,
    load_trace,
    oracle_transcript,
    replay,
    replay_async,
    save_trace,
)
from .server import ServerThread, ServeServer, json_scalar

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "FORMAT_MINOR",
    "save_model",
    "load_model",
    "load_checkpoint",
    "describe_model",
    "TrainedPipeline",
    "InferenceEngine",
    "OnlineLearner",
    "ModelRegistry",
    "EngineLease",
    "MicroBatcher",
    "ProcPredictPool",
    "auto_proc_workers",
    "default_proc_workers",
    "reap_stale_segments",
    "ServeServer",
    "ServerThread",
    "json_scalar",
    "TraceRequest",
    "ReplayReport",
    "generate_trace",
    "save_trace",
    "load_trace",
    "replay",
    "replay_async",
    "oracle_transcript",
    "HTTPReplayClient",
]
