"""Online learning over a live serving pipeline, with atomic checkpoints.

HDC models are natively incremental — training state is a set of integer
:class:`~repro.hdc.packed.BundleAccumulator` tables, so absorbing new
traffic is integer addition, expiring stale traffic is subtraction, and
folding in a replica's accumulated counts is a merge.
:class:`OnlineLearner` packages those three update paths behind the same
record interface the :class:`~repro.serve.engine.InferenceEngine`
serves, and adds crash-safe checkpointing: :meth:`checkpoint` writes the
whole pipeline through :func:`~repro.serve.persist.save_model`'s
write-to-temp-then-``os.replace`` protocol, so a checkpoint file is
always either the previous complete model or the new complete model.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Hashable, Sequence, Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..hdc.packed import BundleAccumulator
from ..learning.classifier import CentroidClassifier
from .engine import InferenceEngine
from .pipeline import TrainedPipeline

__all__ = ["OnlineLearner"]


class OnlineLearner:
    """Incremental updates and checkpointing for a served pipeline.

    Parameters
    ----------
    pipeline:
        The live :class:`~repro.serve.pipeline.TrainedPipeline` (fresh
        or reloaded).  The learner and its engine share the pipeline's
        model object — updates are visible to subsequent predictions
        immediately.
    workers:
        Worker count for the embedded engine's encode/predict sharding
        (``None`` resolves through
        :func:`~repro.runtime.pool.default_workers`: env var, then
        calibration, then serial).
    backend:
        Similarity-kernel backend for the embedded engine's distance
        scans (``"auto"``/``"gemm"``/``"xor"``; ``None`` defers to the
        ``REPRO_KERNEL`` environment variable).
    ingest:
        Ingest kernel backend for :meth:`learn` / :meth:`learn_stream`
        (:data:`repro.hdc.ingest.INGEST_BACKENDS`; ``None`` defers to
        ``REPRO_INGEST_KERNEL``, then ``"auto"``).  Every backend
        updates the model bit-identically — including the serving
        engine's per-call tie RNG draws — so this only moves
        throughput.

    Example
    -------
    >>> import numpy as np
    >>> from repro.basis import CircularBasis
    >>> from repro.learning import HDRegressor
    >>> from repro.serve import OnlineLearner, TrainedPipeline
    >>> emb = CircularBasis(12, 256, seed=0).circular_embedding(period=12.0)
    >>> model = HDRegressor(emb, seed=1)
    >>> pipe = TrainedPipeline(kind="regression", model=model, embedding=emb)
    >>> learner = OnlineLearner(pipe)
    >>> _ = learner.learn(np.arange(12.0)[:, None], np.arange(12.0))
    >>> learner.num_samples
    12
    """

    def __init__(
        self,
        pipeline: TrainedPipeline,
        workers: int | None = None,
        backend: str | None = None,
        ingest: str | None = None,
    ) -> None:
        self.engine = InferenceEngine(pipeline, workers=workers, backend=backend)
        self.ingest = ingest

    def _stream_encode(self):
        """The picklable encode this pipeline's learn paths stream through.

        Keyed pipelines get :class:`~repro.hdc.ingest.EngineEncode`
        (serving-engine tie semantics, bit-identical to
        ``engine.encode``); keyless pipelines embed one value column.
        Both carry the attribute markers the fused ingest tier
        recognises, so :func:`~repro.hdc.ingest.ingest_chunk` can skip
        the encoded-batch materialisation.
        """
        from ..hdc.ingest import EngineEncode

        if self.engine._encoder is not None:
            pool = None if self.engine._pool.serial else self.engine._pool
            return EngineEncode(
                self.engine._encoder, self.pipeline.encode_seed, pool
            )
        from ..streaming.train import ValueEncode

        return ValueEncode(self.pipeline.embedding, 0)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut down the embedded engine's worker pool (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "OnlineLearner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def pipeline(self) -> TrainedPipeline:
        """The live pipeline being updated and served."""
        return self.engine.pipeline

    @property
    def num_samples(self) -> int:
        """Net training samples currently in the model."""
        return self.pipeline.model.num_samples

    # -- updates ---------------------------------------------------------------
    def _check_targets(self, targets: Sequence, n: int) -> list:
        targets = list(targets)
        if len(targets) != n:
            raise InvalidParameterError(f"got {n} records but {len(targets)} targets")
        return targets

    def learn(
        self, features: Any, targets: Union[Sequence[Hashable], np.ndarray]
    ) -> "OnlineLearner":
        """Encode records and add them to the model (incremental fit).

        ``targets`` are class labels for classification pipelines and
        float values for regression pipelines.  A thin wrapper over the
        model's canonical
        :meth:`~repro.learning.classifier.CentroidClassifier.partial_fit`
        reducer with one chunk: the update is a pure accumulator
        addition — O(d) per class/model, independent of how much traffic
        was absorbed before, and bit-identical to batch-training on the
        same records.  Returns ``self``.

        When the fused ingest tier recognises the pipeline
        (:func:`repro.hdc.ingest.ingest_chunk`; select with the
        ``ingest`` constructor argument or ``REPRO_INGEST_KERNEL``) the
        same update lands without materialising the encoded batch —
        identical bytes, including the engine's tie RNG draws.
        """
        from ..hdc.ingest import ingest_chunk
        from ..streaming.chunks import Chunk

        batch = self.engine._as_batch(features)
        targets = self._check_targets(targets, batch.shape[0])
        model = self.pipeline.model
        if not isinstance(model, CentroidClassifier):
            targets = np.asarray(targets, dtype=np.float64)
        chunk = Chunk(features=batch, targets=targets)
        if ingest_chunk(model, chunk, self._stream_encode(), backend=self.ingest):
            return self
        encoded = self.engine.encode(batch)
        model.partial_fit([(encoded, targets)])
        return self

    def forget(
        self, features: Any, targets: Union[Sequence[Hashable], np.ndarray]
    ) -> "OnlineLearner":
        """Encode records and subtract them from the model.

        The exact inverse of :meth:`learn` on the same records: bundle
        counts are integers, so a learn/forget pair restores the model
        bit for bit.  Use it to expire stale or revoked traffic from a
        live model without retraining.  Returns ``self``.
        """
        encoded = self.engine.encode(features)
        targets = self._check_targets(targets, encoded.shape[0])
        model = self.pipeline.model
        if isinstance(model, CentroidClassifier):
            model.forget(encoded, targets)
        else:
            model.forget(encoded, np.asarray(targets, dtype=np.float64))
        return self

    def absorb(
        self, shard: Union[dict[Hashable, BundleAccumulator], BundleAccumulator]
    ) -> "OnlineLearner":
        """Merge pre-aggregated bundle statistics into the model.

        ``shard`` is what a sibling replica produced with
        :meth:`~repro.learning.classifier.CentroidClassifier.shard_counts`
        (a per-class accumulator dict) or
        :meth:`~repro.learning.regression.HDRegressor.shard_bundle` (one
        accumulator).  Integer counts commute, so replicas can train on
        disjoint traffic and fold their statistics into one model in any
        order.  Returns ``self``.  Dispatch lives in
        :func:`repro.learning.merge.absorb_delta` — the same entry point
        the sharded runtime helpers and the ingest cluster merge
        through.
        """
        from ..learning.merge import absorb_delta

        absorb_delta(self.pipeline.model, shard)
        return self

    def learn_stream(
        self,
        source,
        checkpoint: Union[str, os.PathLike, None] = None,
        checkpoint_every: int = 8,
    ):
        """Stream a labelled :class:`~repro.streaming.ChunkSource` in.

        The out-of-core form of :meth:`learn`: every chunk is encoded
        through the serving engine (identical bits to request encoding)
        and reduced into the live model via the canonical
        ``partial_fit`` — memory stays O(chunk) however long the stream
        runs; when the fused ingest tier recognises the pipeline the
        encoded chunk is never materialised at all (same bytes, same
        RNG draws).  With ``checkpoint`` set, the pipeline is atomically
        snapshotted every ``checkpoint_every`` chunks (see
        :meth:`checkpoint`).  Returns the
        :class:`~repro.streaming.StreamStats` of the pass.
        """
        from ..streaming.reduce import encode_reduce

        hook = None
        if checkpoint is not None:
            from ..streaming.train import checkpointer

            hook = checkpointer(self.pipeline, checkpoint, checkpoint_every)
        stats = encode_reduce(
            self.pipeline.model,
            source,
            self._stream_encode(),
            on_chunk=hook,
            ingest=self.ingest,
        )
        if checkpoint is not None:
            # Final snapshot: the tail chunks past the last interval
            # multiple must not be lost when the stream ends.
            self.checkpoint(checkpoint)
        return stats

    # -- serving passthrough ---------------------------------------------------
    def predict(self, features: Any):
        """Predict through the embedded engine (sees all updates so far)."""
        return self.engine.predict(features)

    # -- checkpointing ---------------------------------------------------------
    def checkpoint(self, path: str | os.PathLike) -> Path:
        """Atomically persist the current pipeline state to ``path``.

        Materialises the model (freezing prototypes and the tie-break
        RNG state into the file) and writes the container to a temporary
        sibling before ``os.replace``-ing it over ``path`` — a reader or
        a crash can never observe a torn checkpoint.  Returns the path.
        """
        from .persist import save_model

        return save_model(self.pipeline, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineLearner({self.engine!r}, samples={self.num_samples})"
