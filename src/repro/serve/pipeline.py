"""The servable unit: an encoder specification plus a trained model.

A model alone cannot serve traffic — requests arrive as raw feature
records, not hypervectors — so the artifact the ``train`` CLI writes and
the :class:`~repro.serve.engine.InferenceEngine` loads is a
:class:`TrainedPipeline`: everything needed to go from a feature vector
to a prediction, frozen at training time.

Two encode shapes cover the paper's workloads:

* **key–value records** (``keys`` is a ``(k, d)`` table) — each request
  is a ``k``-channel record encoded as ``⊕_i K_i ⊗ V_{idx(x_i)}`` via
  the fused-table :class:`~repro.runtime.batch.BatchEncoder` (the
  Table 1 classification pipeline);
* **single feature** (``keys`` is ``None``) — each request is one value
  encoded directly through the embedding's basis table (the Mars
  Express regression pipeline).

Majority ties during request encoding are resolved from a stream seeded
with ``encode_seed`` on *every* call, so identical requests always
produce identical hypervectors — across calls, processes and machines.
For serving, prefer a position-free tie policy (``"zeros"``/``"ones"``
— ``"zeros"`` is the default): under ``"random"`` the stream is shared
across a micro-batch, so a record's tie bits depend on where in the
batch it arrived, and single-record answers can differ from batched
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

import numpy as np

from ..basis.base import Embedding
from ..exceptions import InvalidParameterError
from ..hdc.ops import TieBreak
from ..learning.classifier import CentroidClassifier
from ..learning.regression import HDRegressor

__all__ = ["TrainedPipeline"]

#: The two pipeline kinds, matching the model object they carry.
PIPELINE_KINDS = ("classification", "regression")


@dataclass
class TrainedPipeline:
    """A frozen encode-and-predict pipeline, ready to save or serve.

    Attributes
    ----------
    kind:
        ``"classification"`` (model is a
        :class:`~repro.learning.classifier.CentroidClassifier`) or
        ``"regression"`` (model is an
        :class:`~repro.learning.regression.HDRegressor`).
    model:
        The trained model.
    embedding:
        The value embedding φ requests are quantised with.
    keys:
        ``(k, d)`` channel-key hypervectors for key–value record
        encoding, or ``None`` for single-feature pipelines.
    tie_break:
        Majority tie policy used when encoding requests.  Defaults to
        the position-free ``"zeros"`` so a record's encoding never
        depends on its micro-batch; see the module docstring before
        choosing ``"random"``.
    encode_seed:
        Integer seed for the request-encoding tie stream (``None`` lets
        ties fall to OS entropy — only sensible for ``tie_break`` values
        that never draw, like ``"zeros"``).
    metadata:
        Free-form JSON-serialisable provenance (task name, basis kind,
        training metrics, …); stored verbatim in the manifest.

    Example
    -------
    >>> import numpy as np
    >>> from repro.basis import LevelBasis
    >>> from repro.learning import HDRegressor
    >>> from repro.serve import TrainedPipeline
    >>> emb = LevelBasis(16, 256, seed=0).linear_embedding(0.0, 1.0)
    >>> model = HDRegressor(emb, seed=1).fit(emb.encode_packed(np.linspace(0, 1, 30)),
    ...                                      np.linspace(0, 1, 30))
    >>> pipe = TrainedPipeline(kind="regression", model=model, embedding=emb)
    >>> pipe.num_features
    1
    """

    kind: str
    model: Union[CentroidClassifier, HDRegressor]
    embedding: Embedding
    keys: np.ndarray | None = None
    tie_break: TieBreak = "zeros"
    encode_seed: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PIPELINE_KINDS:
            raise InvalidParameterError(
                f"kind must be one of {PIPELINE_KINDS}, got {self.kind!r}"
            )
        expected = CentroidClassifier if self.kind == "classification" else HDRegressor
        if not isinstance(self.model, expected):
            raise InvalidParameterError(
                f"a {self.kind} pipeline needs a {expected.__name__}, "
                f"got {type(self.model).__name__}"
            )
        if self.keys is not None:
            self.keys = np.asarray(self.keys)
            if self.keys.ndim != 2:
                raise InvalidParameterError(
                    f"keys must be a (k, d) table, got shape {self.keys.shape}"
                )
            if self.keys.shape[1] != self.embedding.dim:
                raise InvalidParameterError(
                    f"keys dim {self.keys.shape[1]} does not match embedding "
                    f"dim {self.embedding.dim}"
                )
        if self.encode_seed is not None:
            self.encode_seed = int(self.encode_seed)

    @property
    def dim(self) -> int:
        """Hyperspace dimensionality of the pipeline."""
        return self.embedding.dim

    @property
    def num_features(self) -> int:
        """Features per request record (``k`` channels, or 1 keyless)."""
        return 1 if self.keys is None else int(self.keys.shape[0])
