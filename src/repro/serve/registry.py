"""Named multi-model registry with zero-downtime hot swap.

One serving process, many models: the registry maps URL-safe names to
live :class:`~repro.serve.engine.InferenceEngine` instances so a single
front end (:mod:`repro.serve.server`) can serve every pipeline the
process has loaded.  Its second job is **zero-downtime replacement**:
:meth:`ModelRegistry.swap` builds a fresh engine from a new artifact
(the expensive part — reading the container, unpacking the basis,
building the fused encode table) *before* touching the live entry, then
flips the entry's engine pointer atomically and lets the old engine
drain: every request that already leased the old engine finishes on it,
and the old worker pool is closed exactly when the last lease returns.

Crash safety falls out of the write path being read-only here: a swap
never mutates the artifact on disk (checkpoints are written atomically
elsewhere, see :meth:`~repro.serve.online.OnlineLearner.checkpoint`),
so a process killed at any instant of a swap — even ``kill -9`` between
load and flip — leaves both artifacts complete on disk, and a restarted
server configured with the original paths serves the old model.

Example
-------
>>> from repro.experiments.config import RegressionConfig
>>> from repro.experiments.serving import train_regression_pipeline
>>> from repro.serve import ModelRegistry
>>> pipe = train_regression_pipeline("circular", config=RegressionConfig(dim=128, seed=3))
>>> with ModelRegistry() as registry:
...     lease = registry.register("mars", pipe)
...     registry.names()
['mars']
"""

from __future__ import annotations

import os
import re
import threading
from typing import Iterator, Union

from ..exceptions import InvalidParameterError
from .engine import InferenceEngine
from .pipeline import TrainedPipeline

__all__ = ["ModelRegistry", "EngineLease"]

#: Model names must be URL-path safe: they appear in ``/v1/models/<name>``.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: What :meth:`ModelRegistry.register` and :meth:`~ModelRegistry.swap`
#: accept as a model source.
ModelSource = Union[str, os.PathLike, TrainedPipeline, InferenceEngine]


class EngineLease:
    """One generation of a model: an engine plus its in-flight refcount.

    Callers never construct these; :meth:`ModelRegistry.lease` hands one
    out per request (or per coalesced batch) and
    :meth:`ModelRegistry.release` returns it.  A lease pins its engine:
    a hot swap that lands mid-request flips the registry pointer
    immediately but only closes this engine after its final release —
    the drain step of zero-downtime replacement.
    """

    __slots__ = ("engine", "generation", "source", "_count", "_retired")

    def __init__(self, engine: InferenceEngine, generation: int, source: str) -> None:
        self.engine = engine
        self.generation = generation
        self.source = source
        self._count = 0
        self._retired = False

    @property
    def in_flight(self) -> int:
        """Requests currently holding this lease."""
        return self._count


class ModelRegistry:
    """Thread-safe name → engine mapping with atomic hot swap.

    Parameters
    ----------
    workers, backend, proc_workers:
        Defaults forwarded to every :class:`InferenceEngine` the
        registry builds from a path or pipeline (``None`` defers to the
        ``REPRO_WORKERS`` / ``REPRO_KERNEL`` /
        ``REPRO_SERVE_PROC_WORKERS`` chains).  Pre-built engines are
        registered as-is.  ``proc_workers > 1`` gives every built
        engine — including each hot-swap generation, which republishes
        its own segment behind the lease drain — a process-backed
        predict tier (:mod:`repro.serve.procpool`).

    The registry owns its engines: :meth:`close` (or leaving the
    ``with`` block) closes every live engine, and swapped-out engines
    are closed — worker processes stopped, shared segments unlinked —
    as soon as they drain.
    """

    def __init__(
        self,
        workers: int | None = None,
        backend: str | None = None,
        proc_workers: int | None = None,
    ) -> None:
        self._workers = workers
        self._backend = backend
        self._proc_workers = proc_workers
        self._lock = threading.Lock()
        self._entries: dict[str, EngineLease] = {}
        self._closed = False

    # -- construction ----------------------------------------------------------
    def _build(self, source: ModelSource) -> tuple[InferenceEngine, str]:
        if isinstance(source, InferenceEngine):
            return source, f"<{type(source.pipeline).__name__}>"
        if isinstance(source, TrainedPipeline):
            return (
                InferenceEngine(
                    source,
                    workers=self._workers,
                    backend=self._backend,
                    proc_workers=self._proc_workers,
                ),
                f"<{type(source).__name__}>",
            )
        engine = InferenceEngine.from_path(
            source,
            workers=self._workers,
            backend=self._backend,
            proc_workers=self._proc_workers,
        )
        return engine, str(source)

    def register(self, name: str, source: ModelSource) -> EngineLease:
        """Add a model under ``name``; rejects duplicates and bad names.

        ``source`` is an artifact path (loaded via
        :meth:`InferenceEngine.from_path`), a live
        :class:`TrainedPipeline`, or a pre-built engine.
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise InvalidParameterError(
                f"model name {name!r} must match {_NAME_RE.pattern} "
                "(it becomes part of the request URL)"
            )
        engine, source_label = self._build(source)
        with self._lock:
            if self._closed:
                engine.close()
                raise InvalidParameterError("registry is closed")
            if name in self._entries:
                engine.close()
                raise InvalidParameterError(f"model {name!r} is already registered")
            entry = EngineLease(engine, generation=1, source=source_label)
            self._entries[name] = entry
        return entry

    # -- lookup ----------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered model names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _entry(self, name: str) -> EngineLease:
        entry = self._entries.get(name)
        if entry is None:
            raise InvalidParameterError(
                f"unknown model {name!r}; registered: {sorted(self._entries) or '(none)'}"
            )
        return entry

    def engine(self, name: str) -> InferenceEngine:
        """The model's *current* engine (unleased — prefer :meth:`lease`
        inside request handlers, which pins the generation across a
        concurrent swap)."""
        with self._lock:
            return self._entry(name).engine

    def describe(self) -> dict[str, dict]:
        """JSON-ready listing of every model: kind, shape, provenance."""
        with self._lock:
            entries = dict(self._entries)
        info = {}
        for name, entry in sorted(entries.items()):
            pipeline = entry.engine.pipeline
            info[name] = {
                "kind": pipeline.kind,
                "dim": pipeline.dim,
                "num_features": pipeline.num_features,
                "generation": entry.generation,
                "source": entry.source,
                "metadata": dict(pipeline.metadata),
            }
        return info

    # -- leasing (the drain protocol) ------------------------------------------
    def lease(self, name: str) -> EngineLease:
        """Pin the model's current engine for one request/batch.

        Must be paired with :meth:`release`.  Between the two, the
        leased engine stays open even if a swap replaces it — so a
        response is always computed by exactly one model generation,
        never a mix.
        """
        with self._lock:
            if self._closed:
                raise InvalidParameterError("registry is closed")
            entry = self._entry(name)
            entry._count += 1
            return entry

    def release(self, lease: EngineLease) -> None:
        """Return a lease; closes a swapped-out engine on its last release."""
        close_engine = None
        with self._lock:
            lease._count -= 1
            if lease._count <= 0 and lease._retired:
                close_engine = lease.engine
        if close_engine is not None:
            close_engine.close()

    # -- hot swap ---------------------------------------------------------------
    def swap(self, name: str, source: ModelSource) -> EngineLease:
        """Replace ``name``'s engine with one built from ``source``.

        Zero-downtime: the new engine is fully constructed *before* the
        flip (requests keep landing on the old engine meanwhile), the
        pointer flip is atomic under the registry lock, and the old
        engine drains — it closes when its last in-flight lease is
        released (immediately, if idle).  Returns the new entry.
        """
        engine, source_label = self._build(source)
        with self._lock:
            if self._closed:
                engine.close()
                raise InvalidParameterError("registry is closed")
            try:
                old = self._entry(name)
            except InvalidParameterError:
                engine.close()
                raise
            entry = EngineLease(
                engine, generation=old.generation + 1, source=source_label
            )
            self._entries[name] = entry
            old._retired = True
            drain_now = old._count <= 0
        if drain_now:
            old.engine.close()
        return entry

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Close every live engine (idempotent).  In-flight leases on
        swapped-out engines still close on their final release."""
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            for entry in entries:
                entry._retired = True
            self._entries.clear()
        for entry in entries:
            entry.engine.close()

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry(models={self.names()})"
