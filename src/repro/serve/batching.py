"""Adaptive micro-batching: coalesce concurrent requests into one kernel call.

The GEMM similarity kernels reward batching — one BLAS product over 32
stacked queries costs far less than 32 single-row scans — so the serving
tier's scheduler turns *concurrency* into *batch size*: requests that
are in flight at the same instant are coalesced into a single
:meth:`~repro.serve.engine.InferenceEngine.predict_coalesced` call,
which answers every row bit-identically to a sequential ``predict_one``
(including tie-break RNG draws; that property is what makes coalescing
safe to do silently).

The scheduler is **adaptive**: the batch window only holds a batch open
while there are other admitted requests still unanswered.  A lone
request on an idle server is dispatched immediately — the window never
taxes light traffic — while a flood of concurrent requests fills
batches up to ``max_batch`` before the window expires.

Both knobs resolve through the calibration chain
(:func:`~repro.tuning.calibration.resolve_knob`): explicit argument,
then the ``REPRO_SERVE_BATCH_WINDOW_MS`` / ``REPRO_SERVE_BATCH_MAX``
environment variables, then the active calibration artifact's
``serve.batch_window_ms`` / ``serve.batch_max`` knobs (measured by
``repro calibrate``), then the built-ins below.  Like every knob in the
repository, they only move scheduling — answers are bit-identical for
any value.

Admission control is a bounded in-flight count per batcher
(``serve.max_queue`` / ``REPRO_SERVE_MAX_QUEUE``): a submit over the
bound raises :class:`~repro.exceptions.BackpressureError` immediately,
which the HTTP front end maps to ``429`` — clients see fast, explicit
backpressure instead of unbounded queueing.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import Any, Sequence

import numpy as np

from ..exceptions import BackpressureError
from ..tuning.calibration import resolve_knob
from .registry import ModelRegistry

__all__ = [
    "DEFAULT_BATCH_WINDOW_MS",
    "DEFAULT_BATCH_MAX",
    "DEFAULT_MAX_QUEUE",
    "LATENCY_BUCKETS_S",
    "BATCH_SIZE_BUCKETS",
    "default_batch_window_ms",
    "default_batch_max",
    "default_max_queue",
    "MicroBatcher",
]

#: Built-in batch window: how long a non-full batch may wait for more
#: concurrent traffic, in milliseconds.  ``repro calibrate`` measures a
#: host-specific value (``serve.batch_window_ms``).
DEFAULT_BATCH_WINDOW_MS = 2.0

#: Built-in cap on coalesced batch size (``serve.batch_max``).
DEFAULT_BATCH_MAX = 32

#: Built-in bound on admitted-but-unanswered requests per model
#: (``serve.max_queue``); beyond it, submits fail with backpressure.
DEFAULT_MAX_QUEUE = 256

#: Upper edges (seconds) of the request-latency histogram kept in
#: :attr:`MicroBatcher.stats` and exported by the HTTP tier's
#: ``/metrics`` endpoint; the final implicit bucket is ``+Inf``.
LATENCY_BUCKETS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Upper edges (rows) of the coalesced-batch-size histogram; the final
#: implicit bucket is ``+Inf`` (batches above ``max_batch`` never occur,
#: but the edges are fixed so series from differently-tuned replicas
#: aggregate).
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def _bucket_counts(edges: tuple) -> list[int]:
    return [0] * (len(edges) + 1)


def _observe(edges: tuple, counts: list[int], value: float) -> None:
    """Increment the first bucket whose upper edge admits ``value``.

    Non-cumulative per-bucket counts; the Prometheus rendering
    (:meth:`~repro.serve.server.ServeServer` ``/metrics``) re-cumulates
    them, keeping the hot path to one integer increment.
    """
    for i, edge in enumerate(edges):
        if value <= edge:
            counts[i] += 1
            return
    counts[-1] += 1


def default_batch_window_ms(window_ms: float | None = None) -> float:
    """Resolve the micro-batch window through the calibration chain.

    ``arg > REPRO_SERVE_BATCH_WINDOW_MS > serve.batch_window_ms >
    built-in``.  ``0`` disables waiting entirely (a batch still
    coalesces whatever is already queued).

    >>> default_batch_window_ms(1.5)
    1.5
    """
    value = resolve_knob(
        "serve",
        "batch_window_ms",
        builtin=DEFAULT_BATCH_WINDOW_MS,
        arg=window_ms,
        env_var="REPRO_SERVE_BATCH_WINDOW_MS",
        cast=float,
        minimum=0.0,
    )
    return max(0.0, float(value))


def default_batch_max(batch_max: int | None = None) -> int:
    """Resolve the micro-batch size cap through the calibration chain.

    ``arg > REPRO_SERVE_BATCH_MAX > serve.batch_max > built-in``.
    ``1`` disables coalescing (every request is its own kernel call).

    >>> default_batch_max(8)
    8
    """
    value = resolve_knob(
        "serve",
        "batch_max",
        builtin=DEFAULT_BATCH_MAX,
        arg=batch_max,
        env_var="REPRO_SERVE_BATCH_MAX",
        cast=int,
        minimum=1,
    )
    return max(1, int(value))


def default_max_queue(max_queue: int | None = None) -> int:
    """Resolve the admission-control bound through the calibration chain.

    ``arg > REPRO_SERVE_MAX_QUEUE > serve.max_queue > built-in``.

    >>> default_max_queue(64)
    64
    """
    value = resolve_knob(
        "serve",
        "max_queue",
        builtin=DEFAULT_MAX_QUEUE,
        arg=max_queue,
        env_var="REPRO_SERVE_MAX_QUEUE",
        cast=int,
        minimum=1,
    )
    return max(1, int(value))


class MicroBatcher:
    """Per-model request coalescer over a :class:`ModelRegistry` entry.

    Parameters
    ----------
    registry, name:
        Where predictions come from.  The batcher leases the model's
        *current* engine per batch, so a hot swap takes effect on the
        next batch boundary and every response is computed by exactly
        one model generation.
    window_ms, max_batch, max_queue:
        Scheduling knobs; ``None`` resolves through the calibration
        chain (see the module docstring).
    executor:
        Where the (GIL-releasing) kernel call runs.  ``None`` uses the
        event loop's default thread pool.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`
    explicitly.  :meth:`submit` is the whole request API.

    Example
    -------
    >>> import asyncio
    >>> from repro.experiments.config import RegressionConfig
    >>> from repro.experiments.serving import train_regression_pipeline
    >>> from repro.serve import MicroBatcher, ModelRegistry
    >>> pipe = train_regression_pipeline("circular", config=RegressionConfig(dim=128, seed=3))
    >>> async def demo():
    ...     with ModelRegistry() as registry:
    ...         registry.register("mars", pipe)
    ...         async with MicroBatcher(registry, "mars") as batcher:
    ...             return await batcher.submit([1.25])
    >>> isinstance(asyncio.run(demo()), float)
    True
    """

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        window_ms: float | None = None,
        max_batch: int | None = None,
        max_queue: int | None = None,
        executor: Executor | None = None,
    ) -> None:
        registry.engine(name)  # fail fast on unknown models
        self.registry = registry
        self.name = name
        self.window_s = default_batch_window_ms(window_ms) / 1e3
        self.max_batch = default_batch_max(max_batch)
        self.max_queue = default_max_queue(max_queue)
        self._executor = executor
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending = 0  # admitted, not yet answered (adaptive signal)
        self._task: asyncio.Task | None = None
        self.stats = {
            "requests": 0,
            "rejected": 0,
            "batches": 0,
            "max_batch_seen": 0,
            "max_pending_seen": 0,
            # Histogram state for the /metrics endpoint: per-bucket
            # (non-cumulative) counts over the fixed module-level edges,
            # plus the sums Prometheus histograms carry.
            "latency_seconds_sum": 0.0,
            "latency_buckets": _bucket_counts(LATENCY_BUCKETS_S),
            "batch_rows_sum": 0,
            "batch_buckets": _bucket_counts(BATCH_SIZE_BUCKETS),
        }

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "MicroBatcher":
        """Spawn the scheduler loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain queued requests, then cancel the scheduler loop."""
        if self._task is None:
            return
        while self._pending > 0:  # let in-flight work finish
            await asyncio.sleep(0.001)
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def __aenter__(self) -> "MicroBatcher":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- request path ----------------------------------------------------------
    async def submit(self, features: Sequence[float]) -> Any:
        """Predict one record; coalesced with concurrent submits.

        Raises :class:`~repro.exceptions.BackpressureError` when the
        admitted-but-unanswered count is at ``max_queue`` — admission
        control happens *before* queueing, so an overloaded model fails
        fast instead of buffering unboundedly.
        """
        if self._task is None:
            raise RuntimeError("MicroBatcher.start() has not been awaited")
        if self._pending >= self.max_queue:
            self.stats["rejected"] += 1
            raise BackpressureError(
                f"model {self.name!r} has {self._pending} requests in flight "
                f"(max_queue={self.max_queue}); retry later"
            )
        self._pending += 1
        self.stats["requests"] += 1
        self.stats["max_pending_seen"] = max(
            self.stats["max_pending_seen"], self._pending
        )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._queue.put_nowait((features, future))
        start = loop.time()
        try:
            return await future
        finally:
            self._pending -= 1
            elapsed = loop.time() - start
            self.stats["latency_seconds_sum"] += elapsed
            _observe(LATENCY_BUCKETS_S, self.stats["latency_buckets"], elapsed)

    # -- scheduler loop ----------------------------------------------------------
    async def _collect(self) -> list[tuple]:
        """Gather one batch: first request, then coalesce adaptively."""
        loop = asyncio.get_running_loop()
        batch = [await self._queue.get()]
        deadline = loop.time() + self.window_s
        while len(batch) < self.max_batch:
            # Drain whatever is already queued without yielding.
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            # Adaptive hold: only wait while other admitted requests are
            # still on their way to the queue; an idle server dispatches
            # a lone request immediately.
            remaining = deadline - loop.time()
            if remaining <= 0 or self._pending <= len(batch):
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect()
            self.stats["batches"] += 1
            self.stats["max_batch_seen"] = max(
                self.stats["max_batch_seen"], len(batch)
            )
            self.stats["batch_rows_sum"] += len(batch)
            _observe(BATCH_SIZE_BUCKETS, self.stats["batch_buckets"], len(batch))
            lease = self.registry.lease(self.name)
            try:
                rows = np.asarray([features for features, _ in batch], dtype=np.float64)
                predictions = await loop.run_in_executor(
                    self._executor, lease.engine.predict_coalesced, rows
                )
            except asyncio.CancelledError:  # pragma: no cover - stop() path
                self.registry.release(lease)
                for _, future in batch:
                    if not future.done():
                        future.cancel()
                raise
            except Exception as exc:
                self.registry.release(lease)
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            self.registry.release(lease)
            for (_, future), prediction in zip(batch, predictions):
                if not future.done():
                    future.set_result(prediction)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(model={self.name!r}, window_ms={self.window_s * 1e3}, "
            f"max_batch={self.max_batch}, max_queue={self.max_queue})"
        )
