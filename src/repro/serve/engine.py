"""Online inference: load a model once, answer predict calls forever.

:class:`InferenceEngine` is the serving counterpart of the experiment
drivers: it wraps a :class:`~repro.serve.pipeline.TrainedPipeline`
(either freshly trained or reloaded via
:func:`~repro.serve.persist.load_model`), builds the fused-table
:class:`~repro.runtime.batch.BatchEncoder` once at start-up, and then
answers single-record and micro-batched predict calls.  With
``workers > 1`` the encode count phase and the distance scans shard over
a :class:`~repro.runtime.pool.WorkerPool` with deterministic merge, so
answers are bit-identical for any worker count.

Because request-encoding ties draw from a stream freshly seeded with
the pipeline's ``encode_seed`` on every call, the engine is stateless
across requests: the same record always yields the same hypervector and
therefore the same prediction — whether it arrives alone, inside a
batch, today or from a reloaded replica next year.
"""

from __future__ import annotations

import os
from typing import Any, Hashable, Union

import numpy as np

from ..exceptions import EmptyModelError, InvalidParameterError
from ..hdc.kernels import resolve_backend
from ..hdc.packed import PackedHV
from ..learning.classifier import CentroidClassifier
from ..runtime.batch import BatchEncoder
from ..runtime.parallel import predict_classifier_sharded, predict_regressor_sharded
from ..runtime.pool import WorkerPool, default_workers
from .pipeline import TrainedPipeline
from .procpool import ProcPredictPool, default_proc_workers

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """Encode-then-predict serving loop over a trained pipeline.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.serve.pipeline.TrainedPipeline` to serve.
    workers:
        Worker count for encode/predict sharding.  ``None`` (default)
        resolves through :func:`~repro.runtime.pool.default_workers` —
        the ``REPRO_WORKERS`` environment variable, then the active
        calibration artifact's ``runtime.workers`` knob, then ``1``
        (inline) — and any value produces bit-identical answers.
    backend:
        Similarity-kernel backend for the distance scans
        (:mod:`repro.hdc.kernels`): ``"auto"`` (default via the
        ``REPRO_KERNEL`` environment variable), ``"gemm"`` or ``"xor"``.
        Under ``"auto"`` every micro-batch picks the kernel for its own
        size — a single record scans with XOR + popcount, a large batch
        rides one BLAS product — and every choice is bit-identical.
    proc_workers:
        Worker-*process* count for the distance scans.  ``None``/``0``
        resolves through :func:`~repro.serve.procpool.default_proc_workers`
        (``REPRO_SERVE_PROC_WORKERS``, then the ``serve.proc_workers``
        calibration knob, then one per CPU on ≥4-core hosts).  Above
        ``1`` the engine publishes the packed model tables into a
        shared-memory segment and shards batches across a
        :class:`~repro.serve.procpool.ProcPredictPool` — zero-copy
        table access, encode and tie-break RNG stay in this process,
        answers bit-identical for any value.

    The engine is a context manager (closes its worker pool — and the
    process pool's shared segment — on exit) but can also be used
    without ``with`` for serial serving.

    Example
    -------
    >>> import numpy as np
    >>> from repro.basis import CircularBasis
    >>> from repro.learning import HDRegressor
    >>> from repro.serve import InferenceEngine, TrainedPipeline
    >>> emb = CircularBasis(24, 512, seed=0).circular_embedding(period=24.0)
    >>> hours = np.arange(24.0)
    >>> model = HDRegressor(emb, seed=1).fit(emb.encode_packed(hours), hours)
    >>> pipe = TrainedPipeline(kind="regression", model=model, embedding=emb)
    >>> engine = InferenceEngine(pipe)
    >>> float(engine.predict_one([13.0]))
    13.0
    """

    def __init__(
        self,
        pipeline: TrainedPipeline,
        workers: int | None = None,
        backend: str | None = None,
        proc_workers: int | None = None,
    ) -> None:
        self.pipeline = pipeline
        # Resolve eagerly so a typo'd backend (or REPRO_KERNEL value)
        # fails at construction, not on the first mid-stream request.
        self.backend = resolve_backend(backend)
        self._pool = WorkerPool(workers=default_workers(workers))
        self._pool.__enter__()  # keep one executor alive across requests
        if pipeline.keys is not None:
            self._encoder: BatchEncoder | None = BatchEncoder(
                pipeline.keys, pipeline.embedding, tie_break=pipeline.tie_break
            )
        else:
            self._encoder = None
        try:
            pipeline.model.prepare()
        except EmptyModelError:
            # An untrained pipeline (OnlineLearner bootstrap) has nothing
            # to materialise yet; the first post-training predict will.
            pass
        self.proc_workers = default_proc_workers(proc_workers)
        self._proc: ProcPredictPool | None = None
        if self.proc_workers > 1:
            try:
                self._proc = ProcPredictPool(
                    pipeline, workers=self.proc_workers, backend=self.backend
                )
            except EmptyModelError:
                # Online-bootstrap engines serve inline until trained; a
                # model that mutates per request would be perpetually
                # stale for a process pool anyway.
                self._proc = None

    @classmethod
    def from_path(
        cls,
        path: str | os.PathLike,
        workers: int | None = None,
        backend: str | None = None,
        proc_workers: int | None = None,
    ) -> "InferenceEngine":
        """Load a saved pipeline (``save_model`` output) and wrap it.

        The one-time cost — reading the container, unpacking the basis
        table, building the fused encode table — is paid here; every
        subsequent :meth:`predict` call touches only packed kernels.
        """
        from .persist import load_model

        pipeline = load_model(path)
        if not isinstance(pipeline, TrainedPipeline):
            raise InvalidParameterError(
                f"{path} holds a {type(pipeline).__name__}, not a TrainedPipeline; "
                "wrap bare models in a pipeline to serve them"
            )
        return cls(pipeline, workers=workers, backend=backend, proc_workers=proc_workers)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pools and any shared segments (idempotent)."""
        if self._proc is not None:
            self._proc.close()
        self._pool.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (the registry's drain marker)."""
        return getattr(self, "_closed", False)

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"classification"`` or ``"regression"``."""
        return self.pipeline.kind

    @property
    def num_features(self) -> int:
        """Features each request record must carry."""
        return self.pipeline.num_features

    # -- serving ---------------------------------------------------------------
    def _as_batch(self, features: Any) -> np.ndarray:
        arr = np.asarray(features, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.num_features:
            raise InvalidParameterError(
                f"expected records of {self.num_features} feature(s), "
                f"got shape {np.asarray(features).shape}"
            )
        return arr

    def encode(self, features: Any) -> PackedHV:
        """Encode raw feature records to packed hypervectors.

        ``features`` is one record ``(k,)`` or a micro-batch ``(n, k)``;
        the result is always a packed ``(n, d)`` batch.  Deterministic:
        encoding ties draw from a stream seeded with the pipeline's
        ``encode_seed`` afresh on every call.
        """
        batch = self._as_batch(features)
        if self._encoder is not None:
            pool = None if self._pool.serial else self._pool
            return self._encoder.encode(
                batch, seed=self.pipeline.encode_seed, packed=True, pool=pool
            )
        return self.pipeline.embedding.encode_packed(batch[:, 0])

    def predict(self, features: Any) -> Union[list[Hashable], np.ndarray]:
        """Predict labels (classification) or values (regression).

        Accepts a single record or a micro-batch; always returns the
        batch form (a list of labels, or a float array).  Bit-identical
        for any ``workers`` setting — sharded predictions merge in chunk
        order — and for any ``backend`` (under ``"auto"``, each
        micro-batch picks the similarity kernel for its own size).
        """
        encoded = self.encode(features)
        model = self.pipeline.model
        if self._proc is not None and not self._proc.stale():
            # Process fan-out: row ranges scan in worker processes over
            # the shared tables, merged by the same rule as the thread
            # shards below.  (A stale snapshot — online learning since
            # publication — falls through to the in-process paths.)
            return self._proc.predict(encoded)
        if self._pool.serial:
            return model.predict(encoded, backend=self.backend)
        if isinstance(model, CentroidClassifier):
            return predict_classifier_sharded(
                model, encoded, self._pool, backend=self.backend
            )
        return predict_regressor_sharded(
            model, encoded, self._pool, backend=self.backend
        )

    def predict_coalesced(self, records: Any) -> list:
        """Predict a coalesced micro-batch, bit-identical to ``predict_one``.

        The serving tier's keystone: concurrent in-flight requests are
        coalesced by the :class:`~repro.serve.batching.MicroBatcher`
        into **one** call here, so the distance scan runs as a single
        kernel invocation (one BLAS product under ``"auto"`` for large
        batches) instead of one scan per request — yet every row of the
        answer is exactly what a sequential ``predict_one`` would have
        returned for that record, *including tie-break RNG draws*:

        * position-free tie policies (``"zeros"``/``"ones"`` — the
          serving default) batch-encode directly, since no record's
          encoding can depend on its neighbours;
        * the ``"random"`` policy shares one RNG stream across a batch
          encode, so here each record is encoded through the same
          freshly-seeded single-record path ``predict_one`` uses, and
          only the distance scan is coalesced.

        Returns a plain list of per-record labels/values (scalars), in
        request order.
        """
        batch = self._as_batch(records)
        if batch.shape[0] == 0:
            return []
        if self._encoder is None:
            # Keyless pipelines quantise each value independently — no
            # tie draws at all, so batch encoding is trivially exact.
            encoded = self.pipeline.embedding.encode_packed(batch[:, 0])
        elif self.pipeline.tie_break in ("zeros", "ones"):
            pool = None if self._pool.serial else self._pool
            encoded = self._encoder.encode(
                batch, seed=self.pipeline.encode_seed, packed=True, pool=pool
            )
        else:
            rows = [
                self._encoder.encode_one(
                    row, seed=self.pipeline.encode_seed, packed=True
                )
                for row in batch
            ]
            encoded = PackedHV(
                np.concatenate([r.data for r in rows], axis=0), self.pipeline.dim
            )
        if self._proc is not None and not self._proc.stale():
            return list(self._proc.predict(encoded))
        return list(self.pipeline.model.predict(encoded, backend=self.backend))

    def predict_one(self, record: Any) -> Any:
        """Predict for exactly one record; returns a scalar label/value.

        The single-record fast path: encodes through
        :meth:`~repro.runtime.batch.BatchEncoder.encode_one` (no chunk
        partitioning, no pool dispatch) and predicts inline — under
        ``"auto"`` a one-row scan always lands on the XOR kernel.  The
        answer is bit-identical to ``predict([record])[0]`` (asserted in
        ``tests/serve/test_engine.py``); the per-call latency drop is
        measured by ``benchmarks/bench_serve_latency.py``.
        """
        arr = np.asarray(record, dtype=np.float64)
        if arr.ndim != 1 or arr.shape[0] != self.num_features:
            raise InvalidParameterError(
                f"predict_one takes a single ({self.num_features},) record, "
                f"got shape {arr.shape}"
            )
        if self._encoder is not None:
            encoded = self._encoder.encode_one(
                arr, seed=self.pipeline.encode_seed, packed=True
            )
        else:
            encoded = self.pipeline.embedding.encode_packed(arr[:1])
        return self.pipeline.model.predict(encoded, backend=self.backend)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceEngine(kind={self.kind!r}, dim={self.pipeline.dim}, "
            f"features={self.num_features}, workers={self._pool.workers}, "
            f"proc_workers={self.proc_workers})"
        )
