"""Replay-driven load generation for the serving tier.

The concurrency harness in ``benchmarks/bench_serve_concurrency.py`` and
``tests/serve/test_replay.py`` is built on three pieces that live here:

* a **trace**: a list of :class:`TraceRequest` records — arrival time,
  target model, feature row — generated from a seed
  (:func:`generate_trace`) or loaded from a JSONL file
  (:func:`load_trace`, every line validated with its line number in the
  error) so a run is reproducible from a file checked into the repo;
* a **replayer** (:func:`replay_async` / :func:`replay`): schedules each
  request at ``t / speedup`` on the event loop, fires them concurrently
  against any async ``submit(model, features)`` callable, and reports
  per-request latencies (p50/p99) plus the response transcript in trace
  order;
* an **oracle** (:func:`oracle_transcript`): the same trace answered
  sequentially through :meth:`InferenceEngine.predict_one
  <repro.serve.engine.InferenceEngine.predict_one>` — the ground truth
  that any concurrent interleaving through the micro-batcher must match
  **bit-identically** (both transcripts normalise through
  :func:`~repro.serve.server.json_scalar`, so the comparison is exact
  ``==`` on JSON scalars).

:class:`HTTPReplayClient` is the socket-level submitter: a small pool of
keep-alive HTTP/1.1 connections to a running ``repro serve-http``
server, so the replay exercises the full network path, not just the
scheduler.

Trace file format (JSONL, one request per line)::

    {"id": 0, "t": 0.0,     "model": "suturing", "features": [0.1, ...]}
    {"id": 1, "t": 0.0031,  "model": "mars",     "features": [2.5]}

``id`` is a unique non-negative integer (transcripts are ordered by
trace position), ``t`` is the arrival offset in seconds from replay
start (non-negative, finite), ``model`` is a registry name and
``features`` is the record row (finite numbers).  Unknown extra keys are
rejected, as are malformed lines — :func:`load_trace` raises
:class:`~repro.exceptions.InvalidParameterError` naming the offending
line instead of letting a bad trace hang a replay.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Mapping, Sequence

import numpy as np

from .._rng import ensure_rng
from ..exceptions import BackpressureError, InvalidParameterError
from .engine import InferenceEngine
from .server import json_scalar

__all__ = [
    "TraceRequest",
    "ReplayReport",
    "generate_trace",
    "save_trace",
    "load_trace",
    "replay_async",
    "replay",
    "oracle_transcript",
    "HTTPReplayClient",
]

_TRACE_KEYS = frozenset({"id", "t", "model", "features"})


@dataclass(frozen=True)
class TraceRequest:
    """One request in a replayable trace."""

    id: int  #: unique, non-negative; transcripts are keyed by it
    t: float  #: arrival offset from replay start, seconds
    model: str  #: registry model name
    features: tuple  #: the feature row (immutable so traces are hashable)


@dataclass
class ReplayReport:
    """What one replay run observed.

    ``responses`` is the transcript in trace order — every value already
    normalised through :func:`~repro.serve.server.json_scalar`, so it
    compares exactly against :func:`oracle_transcript`.  Failed requests
    hold ``None`` in ``responses`` and an entry in ``errors``.
    """

    responses: list = field(default_factory=list)
    errors: dict[int, str] = field(default_factory=dict)
    rejected: int = 0  #: how many errors were backpressure (429) rejections
    latencies_ms: list[float] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def count(self) -> int:
        return len(self.responses)

    @property
    def ok(self) -> int:
        return self.count - len(self.errors)

    def percentile_ms(self, q: float) -> float:
        """Latency percentile over successful requests, in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50.0)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99.0)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def summary(self) -> dict:
        """JSON-ready digest (what the benchmark records)."""
        return {
            "requests": self.count,
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": len(self.errors),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
        }


def generate_trace(
    model_specs: Mapping[str, tuple[int, tuple[float, float]]],
    num_requests: int,
    seed: Any,
    rate_hz: float = 500.0,
) -> list[TraceRequest]:
    """Synthesise a seeded mixed-model request trace.

    Parameters
    ----------
    model_specs:
        ``name -> (num_features, (low, high))``: each request targets a
        model drawn uniformly from the mapping (sorted order, so the
        draw is reproducible) with features uniform in ``[low, high)``.
    num_requests, seed:
        Trace length and RNG seed — same seed, same trace, bit for bit.
    rate_hz:
        Mean arrival rate; inter-arrival gaps are exponential (Poisson
        arrivals), which is what produces the bursts of genuinely
        concurrent in-flight requests the micro-batcher coalesces.

    >>> trace = generate_trace({"m": (2, (0.0, 1.0))}, 3, seed=0, rate_hz=100.0)
    >>> [r.id for r in trace], trace == generate_trace({"m": (2, (0.0, 1.0))}, 3, seed=0, rate_hz=100.0)
    ([0, 1, 2], True)
    """
    if num_requests < 1:
        raise InvalidParameterError("num_requests must be >= 1")
    if not model_specs:
        raise InvalidParameterError("model_specs must name at least one model")
    if not (rate_hz > 0):
        raise InvalidParameterError("rate_hz must be positive")
    rng = ensure_rng(seed)
    names = sorted(model_specs)
    trace: list[TraceRequest] = []
    t = 0.0
    for i in range(num_requests):
        t += float(rng.exponential(1.0 / rate_hz))
        name = names[int(rng.integers(len(names)))]
        num_features, (low, high) = model_specs[name]
        features = tuple(
            float(v) for v in rng.uniform(low, high, size=int(num_features))
        )
        trace.append(TraceRequest(id=i, t=t, model=name, features=features))
    return trace


def save_trace(trace: Sequence[TraceRequest], path: str | os.PathLike) -> None:
    """Write a trace as JSONL (the format in the module docstring)."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in trace:
            fh.write(
                json.dumps(
                    {
                        "id": req.id,
                        "t": req.t,
                        "model": req.model,
                        "features": list(req.features),
                    }
                )
                + "\n"
            )


def _trace_line(line: str, lineno: int) -> TraceRequest:
    def bad(reason: str) -> InvalidParameterError:
        return InvalidParameterError(f"trace line {lineno}: {reason}")

    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise bad(f"not valid JSON ({exc})") from None
    if not isinstance(obj, dict):
        raise bad("expected a JSON object")
    missing = _TRACE_KEYS - obj.keys()
    if missing:
        raise bad(f"missing key(s) {sorted(missing)}")
    extra = obj.keys() - _TRACE_KEYS
    if extra:
        raise bad(f"unknown key(s) {sorted(extra)}")
    rid, t, model, features = obj["id"], obj["t"], obj["model"], obj["features"]
    if not isinstance(rid, int) or isinstance(rid, bool) or rid < 0:
        raise bad(f"'id' must be a non-negative integer, got {rid!r}")
    if isinstance(t, bool) or not isinstance(t, (int, float)) or not math.isfinite(t) or t < 0:
        raise bad(f"'t' must be a finite non-negative number, got {t!r}")
    if not isinstance(model, str) or not model:
        raise bad(f"'model' must be a non-empty string, got {model!r}")
    if not isinstance(features, list) or not features:
        raise bad("'features' must be a non-empty list")
    for v in features:
        if isinstance(v, bool) or not isinstance(v, (int, float)) or not math.isfinite(v):
            raise bad(f"'features' must hold finite numbers, got {v!r}")
    return TraceRequest(
        id=rid, t=float(t), model=model, features=tuple(float(v) for v in features)
    )


def load_trace(path: str | os.PathLike) -> list[TraceRequest]:
    """Read a JSONL trace, validating every line.

    Malformed input — bad JSON, missing/unknown keys, non-finite
    numbers, duplicate ids — raises
    :class:`~repro.exceptions.InvalidParameterError` naming the
    offending line, so a broken trace fails the run immediately instead
    of hanging a replay.  Blank lines and ``#`` comment lines are
    skipped.
    """
    trace: list[TraceRequest] = []
    seen_ids: set[int] = set()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            req = _trace_line(line, lineno)
            if req.id in seen_ids:
                raise InvalidParameterError(
                    f"trace line {lineno}: duplicate id {req.id}"
                )
            seen_ids.add(req.id)
            trace.append(req)
    if not trace:
        raise InvalidParameterError(f"trace {path} holds no requests")
    return trace


async def replay_async(
    trace: Sequence[TraceRequest],
    submit: Callable[[str, Sequence[float]], Awaitable[Any]],
    speedup: float = 1.0,
) -> ReplayReport:
    """Fire a trace at a submit callable, honouring arrival times.

    Each request is scheduled at ``t / speedup`` seconds after replay
    start (``speedup=10`` replays a 5 s trace in 0.5 s, stacking up more
    concurrency); all requests run as concurrent tasks, exactly like
    independent clients.  ``submit`` is any async callable — a
    :meth:`MicroBatcher.submit <repro.serve.batching.MicroBatcher.submit>`
    wrapper for in-process runs, or
    :meth:`HTTPReplayClient.submit` for socket-level runs.

    The report's transcript is in trace order and json-normalised;
    backpressure rejections are counted separately from other errors.
    """
    if not (speedup > 0):
        raise InvalidParameterError("speedup must be positive")
    loop = asyncio.get_running_loop()
    start = loop.time()
    report = ReplayReport(responses=[None] * len(trace))

    async def one(index: int, req: TraceRequest) -> None:
        delay = start + req.t / speedup - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        begin = loop.time()
        try:
            value = await submit(req.model, req.features)
        except BackpressureError as exc:
            report.rejected += 1
            report.errors[req.id] = str(exc)
            return
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            report.errors[req.id] = f"{type(exc).__name__}: {exc}"
            return
        report.latencies_ms.append((loop.time() - begin) * 1e3)
        report.responses[index] = json_scalar(value)

    await asyncio.gather(*(one(i, req) for i, req in enumerate(trace)))
    report.duration_s = loop.time() - start
    return report


def replay(
    trace: Sequence[TraceRequest],
    submit: Callable[[str, Sequence[float]], Awaitable[Any]],
    speedup: float = 1.0,
) -> ReplayReport:
    """Synchronous wrapper: run :func:`replay_async` on a fresh loop."""
    return asyncio.run(replay_async(trace, submit, speedup=speedup))


def oracle_transcript(
    trace: Sequence[TraceRequest], engines: Mapping[str, InferenceEngine]
) -> list:
    """The sequential ground truth a concurrent replay must reproduce.

    Answers the trace one request at a time through each model's
    :meth:`~repro.serve.engine.InferenceEngine.predict_one` — no
    batching, no concurrency, no scheduler — and returns the transcript
    in trace order, json-normalised.  Any interleaving of the same trace
    through the micro-batcher (or the HTTP server) must equal this list
    exactly; the tests and the concurrency benchmark both assert ``==``.
    """
    transcript = []
    for req in trace:
        engine = engines.get(req.model)
        if engine is None:
            raise InvalidParameterError(
                f"trace request {req.id} targets unknown model {req.model!r}"
            )
        transcript.append(json_scalar(engine.predict_one(list(req.features))))
    return transcript


class HTTPReplayClient:
    """Keep-alive HTTP/1.1 connection pool for socket-level replays.

    Holds up to ``connections`` persistent connections to a running
    serve-http server; :meth:`submit` checks one out, issues a
    ``:predict`` POST and returns the prediction.  429 responses raise
    :class:`~repro.exceptions.BackpressureError` (so
    :func:`replay_async` counts them as rejections), other non-200s
    raise :class:`~repro.exceptions.InvalidParameterError` with the
    server's error message.

    Use as an async context manager inside the replay's event loop.
    """

    def __init__(self, host: str, port: int, connections: int = 16) -> None:
        if connections < 1:
            raise InvalidParameterError("connections must be >= 1")
        self.host = host
        self.port = port
        self.connections = connections
        self._pool: asyncio.Queue = asyncio.Queue()
        self._created = 0
        self._closed = False

    async def __aenter__(self) -> "HTTPReplayClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._closed = True
        while self._created > 0:
            _, writer = await self._pool.get()
            self._created -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _acquire(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._closed:
            raise InvalidParameterError("HTTPReplayClient is closed")
        if self._pool.empty() and self._created < self.connections:
            self._created += 1
            try:
                return await asyncio.open_connection(self.host, self.port)
            except BaseException:
                self._created -= 1
                raise
        return await self._pool.get()

    async def submit(self, model: str, features: Sequence[float]) -> Any:
        """POST one record to ``/v1/models/<model>:predict``."""
        reader, writer = await self._acquire()
        try:
            body = json.dumps({"features": list(features)}).encode("utf-8")
            writer.write(
                (
                    f"POST /v1/models/{model}:predict HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: keep-alive\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
            status, payload = await self._read_response(reader)
        except BaseException:
            # The connection state is unknown; drop it from the pool.
            self._created -= 1
            writer.close()
            raise
        self._pool.put_nowait((reader, writer))
        if status == 200:
            return payload["prediction"]
        message = payload.get("error", f"HTTP {status}")
        if status == 429:
            raise BackpressureError(message)
        raise InvalidParameterError(f"HTTP {status}: {message}")

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise InvalidParameterError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise ConnectionError("server closed mid-headers")
            key, sep, value = raw.decode("latin-1").partition(":")
            if sep and key.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return status, json.loads(body.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HTTPReplayClient({self.host}:{self.port}, pool={self.connections})"
