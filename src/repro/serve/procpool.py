"""Multi-process prediction: shared-memory model tables, zero-copy workers.

The threaded serving tier (:class:`~repro.serve.engine.InferenceEngine`
over a :class:`~repro.runtime.pool.WorkerPool`) scales until the
Python-level request plumbing serialises on the GIL.  This module is the
next step: a :class:`ProcPredictPool` publishes a pipeline's packed
model tables — class prototypes, the regression model vector, the label
table, the integer-mode weight table — **once** into a single
:mod:`multiprocessing.shared_memory` segment, and N worker *processes*
map that segment zero-copy (a ``PackedHV`` view straight over the shared
buffer; no model pickling per request, no per-worker copy of the
tables).  Per request, only the packed query rows and the per-row
answers cross the pipe.

Exactness is inherited, not re-proven: the parent encodes every record
(so tie-break RNG draws never leave the process), calls ``prepare()``
before publication (so materialisation consumes the RNG exactly as a
serial run would), splits the batch into contiguous row ranges with the
same :func:`~repro.streaming.chunks.iter_slices` bounds the thread-
sharded predict uses, and merges per-range results in range order
through the same merge helpers (:func:`~repro.runtime.parallel.merge_label_parts`
/ :func:`~repro.runtime.parallel.merge_value_parts`).  Workers run the
identical distance/decode expressions on row slices — the operation the
thread-sharded tier already pins as bit-identical — so any worker count
answers exactly like a sequential ``predict_one``.

Crash story (both directions):

* **worker SIGKILL** — workers are stateless pure functions of the
  shared tables; the parent detects the broken pipe, respawns the
  worker against the same segment and re-sends only the failed row
  ranges.  Answers are unchanged because nothing about them ever lived
  in the dead process.
* **parent SIGKILL** — every segment is recorded in an on-disk manifest
  (``$TMPDIR/repro-shm-manifests/<pid>-<token>.json``) owned by the
  creating process; any later :class:`ProcPredictPool` construction
  reaps manifests whose owner pid is dead, unlinking their segments.
  A clean :meth:`ProcPredictPool.close` unlinks the segment and removes
  its own manifest.

The worker count resolves through the calibration chain
(:func:`default_proc_workers`): explicit argument, then
``REPRO_SERVE_PROC_WORKERS``, then the artifact's
``serve.proc_workers`` knob (measured by ``repro calibrate``), then an
auto default (one per CPU on ≥4-core hosts, disabled below that —
process fan-out only pays once there are cores to fan out to).  ``0``
means "auto" at every link.  Like every knob in the repository, the
value only moves scheduling; answers are bit-identical for any setting.
"""

from __future__ import annotations

import json
import os
import tempfile
import traceback
import uuid
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Callable, Hashable

import numpy as np

from ..exceptions import EmptyModelError, InvalidParameterError
from ..hdc.coerce import batch_rows
from ..hdc.kernels import pairwise_hamming
from ..hdc.packed import PackedHV, packed_bind
from ..learning.classifier import CentroidClassifier
from ..learning.regression import HDRegressor
from ..runtime.parallel import merge_label_parts, merge_value_parts
from ..runtime.pool import default_start_method
from ..streaming.chunks import iter_slices

__all__ = [
    "DEFAULT_PROC_WORKERS",
    "auto_proc_workers",
    "default_proc_workers",
    "reap_stale_segments",
    "ProcPredictPool",
    "proc_worker_main",
]

#: Environment variable overriding the calibrated worker-process count
#: (the calibration knob is ``serve.proc_workers``; ``0`` means auto).
_ENV_PROC_WORKERS = "REPRO_SERVE_PROC_WORKERS"

#: Sentinel for the built-in default: resolved per host by
#: :func:`auto_proc_workers` (``1`` below 4 cores, one per CPU above).
DEFAULT_PROC_WORKERS = 0

#: Array offsets inside a published segment are aligned to this many
#: bytes so every dtype maps cleanly over the shared buffer.
_ALIGN = 64

#: Where segment ownership manifests live; one JSON file per pool,
#: named ``<owner-pid>-<token>.json``.
_MANIFEST_DIR = Path(tempfile.gettempdir()) / "repro-shm-manifests"

#: Respawn budget per row-range dispatch: a worker that dies this many
#: times in a row while computing the same ranges is a real fault, not a
#: stray ``kill``.
_MAX_RESPAWNS = 2


def auto_proc_workers() -> int:
    """The built-in ``proc_workers`` default for this host.

    One worker per CPU on hosts with at least 4 cores; ``1`` (process
    fan-out disabled, predict runs in the serving process) below that —
    shipping query rows over a pipe only pays once several cores can
    scan in parallel.

    >>> auto_proc_workers() >= 1
    True
    """
    cpus = os.cpu_count() or 1
    return cpus if cpus >= 4 else 1


def default_proc_workers(proc_workers: int | None = None) -> int:
    """Resolve the worker-process count through the calibration chain.

    ``arg > REPRO_SERVE_PROC_WORKERS > serve.proc_workers > auto``
    (see :func:`auto_proc_workers`).  ``0`` or ``None`` at any link
    means "auto"; ``1`` disables process fan-out entirely.  Any value
    produces bit-identical answers.

    >>> default_proc_workers(3)
    3
    >>> default_proc_workers(1)
    1
    """
    from ..tuning.calibration import resolve_knob

    if proc_workers is not None and (
        not isinstance(proc_workers, int)
        or isinstance(proc_workers, bool)
        or proc_workers < 0
    ):
        raise InvalidParameterError(
            f"proc_workers must be a non-negative integer, got {proc_workers!r}"
        )
    value = resolve_knob(
        "serve",
        "proc_workers",
        builtin=DEFAULT_PROC_WORKERS,
        arg=proc_workers or None,
        env_var=_ENV_PROC_WORKERS,
        cast=int,
        minimum=0,
    )
    value = int(value)
    return value if value >= 1 else auto_proc_workers()


# -- segment manifests (parent-owned, kill-safe) ------------------------------

def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign-owned pid
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


def _unlink_segment(name: str) -> None:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - concurrent reap
        pass


def reap_stale_segments() -> list[str]:
    """Unlink segments whose owning process is gone; returns their names.

    Every :class:`ProcPredictPool` records its segment in an on-disk
    manifest before the first worker spawns; this sweep (run on every
    pool construction, callable directly by operators) removes the
    segments of parents that died without a clean :meth:`close` — the
    ``kill -9`` leak path.
    """
    reaped: list[str] = []
    if not _MANIFEST_DIR.is_dir():
        return reaped
    for path in sorted(_MANIFEST_DIR.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
            pid = int(doc["pid"])
            segments = [str(s) for s in doc["segments"]]
        except (OSError, ValueError, KeyError, TypeError):
            # A torn write from a dying parent: the manifest is unusable,
            # but only remove it once no process claims the filename pid.
            try:
                owner = int(path.name.split("-", 1)[0])
            except ValueError:
                owner = -1
            if owner < 0 or not _pid_alive(owner):
                path.unlink(missing_ok=True)
            continue
        if _pid_alive(pid):
            continue
        for name in segments:
            _unlink_segment(name)
            reaped.append(name)
        path.unlink(missing_ok=True)
    return reaped


def _write_manifest(segments: list[str]) -> Path:
    _MANIFEST_DIR.mkdir(parents=True, exist_ok=True)
    token = uuid.uuid4().hex[:12]
    path = _MANIFEST_DIR / f"{os.getpid()}-{token}.json"
    payload = json.dumps({"pid": os.getpid(), "segments": segments})
    tmp = path.with_suffix(".tmp")
    tmp.write_text(payload + "\n")
    os.replace(tmp, path)
    return path


def _cleanup_segment(segment_name: str, manifest_path: str) -> None:
    """Idempotent last-resort cleanup (weakref finalizer target)."""
    _unlink_segment(segment_name)
    Path(manifest_path).unlink(missing_ok=True)


# -- publication --------------------------------------------------------------

@dataclass
class _WorkerPlan:
    """Everything a worker needs to serve; picklable for ``spawn``.

    The arrays themselves stay in the shared segment — this carries only
    the map (name → offset/shape/dtype) plus scalar model metadata.
    Class labels never appear here: workers return winner *indices* and
    the parent maps them through its own ``class_order``.
    """

    kind: str                    # "classification" | "regression"
    segment: str
    dim: int
    backend: str | None
    arrays: dict[str, tuple[int, tuple[int, ...], str]] = field(default_factory=dict)
    model_mode: str | None = None
    decode_mode: str | None = None
    total: int = 0               # integer-mode normaliser (bundle total)


def _publish_arrays(
    named: list[tuple[str, np.ndarray]],
) -> tuple[shared_memory.SharedMemory, dict[str, tuple[int, tuple[int, ...], str]]]:
    """Copy arrays into one fresh segment; returns it plus the offset map."""
    metas: dict[str, tuple[int, tuple[int, ...], str]] = {}
    offset = 0
    for name, arr in named:
        offset = -(-offset // _ALIGN) * _ALIGN
        metas[name] = (offset, tuple(arr.shape), arr.dtype.str)
        offset += arr.nbytes
    segment = shared_memory.SharedMemory(
        create=True, size=max(1, offset), name=f"repro-{os.getpid()}-{uuid.uuid4().hex[:12]}"
    )
    for name, arr in named:
        off, shape, dtype = metas[name]
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=off)
        view[...] = arr
    return segment, metas


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach read-side to an existing segment without adopting ownership.

    Python 3.13 grew ``track=False`` for exactly this.  On older
    runtimes the attach re-registers the segment with the resource
    tracker — harmless, because the tracker process (and its name
    *set*) is shared down the process tree under both start methods,
    so the duplicate register is a no-op and the single entry is
    removed exactly once, by the owning parent's ``unlink``.
    Explicitly unregistering here would strip the parent's entry and
    make that later ``unlink`` trip a tracker ``KeyError``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _segment_view(
    segment: shared_memory.SharedMemory, meta: tuple[int, tuple[int, ...], str]
) -> np.ndarray:
    offset, shape, dtype = meta
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
    view.setflags(write=False)
    return view


def _integer_weight_table(model: HDRegressor) -> np.ndarray:
    """The folded ``A = signed ⊙ Lᵀ`` table of the integer-mode score.

    Mirrors the first half of :meth:`HDRegressor._label_scores` exactly
    (same expressions, same dtypes); the per-query half runs in the
    worker on this frozen table.
    """
    label_bits = model.label_embedding.basis.vectors
    total = model.num_samples
    signed = (total - 2.0 * model.bundle_counts).astype(np.float32)
    label_bipolar = 1.0 - 2.0 * label_bits.astype(np.float32)
    return signed[:, None] * label_bipolar.T


def _decode_scores(scores: np.ndarray, grid: np.ndarray, decode_mode: str) -> np.ndarray:
    """Label decode on a score block — the tail of :meth:`HDRegressor.predict`.

    Must stay expression-for-expression identical to the serial decode
    (pinned by ``tests/serve/test_procpool.py`` across both modes and
    the degenerate weighted branch).
    """
    scores = np.atleast_2d(scores)
    if decode_mode == "argmin":
        return grid[np.argmax(scores, axis=-1)]
    weights = np.clip(scores, 0.0, None)
    totals = weights.sum(axis=-1)
    out = np.empty(scores.shape[0], dtype=np.float64)
    degenerate = totals <= 1e-12
    if np.any(degenerate):
        out[degenerate] = grid[np.argmax(scores[degenerate], axis=-1)]
    good = ~degenerate
    if np.any(good):
        out[good] = (weights[good] * grid[None, :]).sum(axis=-1) / totals[good]
    return out


def _make_scorer(
    plan: _WorkerPlan, segment: shared_memory.SharedMemory
) -> Callable[[np.ndarray], np.ndarray]:
    """Bind the per-row-range score function over zero-copy table views."""
    views = {name: _segment_view(segment, meta) for name, meta in plan.arrays.items()}
    if plan.kind == "classification":
        table = PackedHV(views["table"], plan.dim)

        def score(rows_data: np.ndarray) -> np.ndarray:
            rows = PackedHV(rows_data, plan.dim)
            distances = pairwise_hamming(rows, table, backend=plan.backend)
            return np.argmin(np.atleast_2d(distances), axis=-1)

        return score
    grid = views["grid"]
    if plan.model_mode == "binary":
        model_hv = PackedHV(views["model"], plan.dim)
        labels = PackedHV(views["labels"], plan.dim)

        def score(rows_data: np.ndarray) -> np.ndarray:
            queries = PackedHV(rows_data, plan.dim)
            unbound = packed_bind(queries, model_hv)
            distances = pairwise_hamming(unbound, labels, backend=plan.backend)
            return _decode_scores(1.0 - 2.0 * distances, grid, plan.decode_mode)

        return score
    weighted = views["weighted"]
    colsum = weighted.sum(axis=0)[None, :]
    norm = plan.dim * max(plan.total, 1)

    def score(rows_data: np.ndarray) -> np.ndarray:
        bits = PackedHV(rows_data, plan.dim).unpack()
        scores = colsum - 2.0 * (bits.astype(np.float32) @ weighted)
        return _decode_scores(scores / norm, grid, plan.decode_mode)

    return score


def proc_worker_main(plan: _WorkerPlan, conn: Any) -> None:
    """Worker entry point: map the segment, answer row ranges until EOF.

    Module-level so the ``spawn`` start method can import it.  Protocol
    (tuples over the duplex pipe, mirroring the cluster worker idiom):

    * ``("predict", [(range_index, packed_rows), ...])`` →
      ``("ok", [(range_index, result_array), ...])`` or
      ``("error", traceback_text)``;
    * ``("close",)`` or pipe EOF → exit.

    Workers hold no mutable state: every answer is a pure function of
    the shared tables and the request rows, which is what makes the
    parent's respawn-and-resend recovery exact.
    """
    segment = _attach_segment(plan.segment)
    try:
        score = _make_scorer(plan, segment)
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "close":
                break
            try:
                jobs = message[1]
                conn.send(("ok", [(idx, score(rows)) for idx, rows in jobs]))
            except Exception:  # noqa: BLE001 - shipped to the parent
                try:
                    conn.send(("error", traceback.format_exc()))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    break
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - teardown race
            pass
        segment.close()


# -- the parent-side pool -----------------------------------------------------

class ProcPredictPool:
    """Shard predict batches across worker processes over shared tables.

    Parameters
    ----------
    pipeline:
        A *trained* :class:`~repro.serve.pipeline.TrainedPipeline`; its
        packed tables are materialised (``prepare()``, consuming the
        tie-break RNG exactly as a serial run would) and published to
        shared memory at construction.  Raises
        :class:`~repro.exceptions.EmptyModelError` for an untrained
        pipeline (the online-bootstrap engine path keeps serving
        inline).
    workers:
        Worker-process count (≥ 2 to be useful; ``1`` builds a pool that
        still works but fans out nothing).
    backend:
        Similarity-kernel backend string forwarded to the workers'
        distance scans; every choice is bit-identical.
    start_method:
        ``multiprocessing`` start method; ``None`` picks the platform
        default (``fork`` where available, else ``spawn`` — the same
        rule the ingest cluster uses).

    The pool snapshots the model tables: :meth:`stale` reports whether
    the live model has diverged (online ``learn``/``forget`` invalidate
    the materialised tables), and the engine falls back to in-process
    predict in that case — bit-identical either way.
    """

    def __init__(
        self,
        pipeline: Any,
        workers: int,
        backend: str | None = None,
        start_method: str | None = None,
    ) -> None:
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise InvalidParameterError(
                f"workers must be a positive integer, got {workers!r}"
            )
        reap_stale_segments()
        import multiprocessing

        self.workers = workers
        self.backend = backend
        self._ctx = multiprocessing.get_context(start_method or default_start_method())
        self._class_order: list[Hashable] | None = None
        self._stale_fn: Callable[[], bool]
        model = pipeline.model
        named: list[tuple[str, np.ndarray]]
        if isinstance(model, CentroidClassifier):
            table, order = model.prototype_table()
            self._class_order = order
            named = [("table", table.data)]
            plan_kw: dict[str, Any] = {"kind": "classification"}
            self._stale_fn = lambda: model.packed_prototypes is not table
        elif isinstance(model, HDRegressor):
            model.prepare()
            grid = np.asarray(model.label_embedding.discretizer.points, dtype=np.float64)
            if model.model_mode == "binary":
                packed_model = model.packed_model
                named = [
                    ("model", packed_model.data),
                    ("labels", model.label_embedding.basis.packed.data),
                    ("grid", grid),
                ]
                self._stale_fn = (
                    lambda: model.materialised_model is not packed_model
                )
            else:
                if model.num_samples == 0:
                    raise EmptyModelError("regressor has no training data")
                counts = model.bundle_counts.copy()
                total = model.num_samples
                named = [
                    ("weighted", _integer_weight_table(model)),
                    ("grid", grid),
                ]
                self._stale_fn = lambda: not (
                    model.num_samples == total
                    and np.array_equal(model.bundle_counts, counts)
                )
            plan_kw = {
                "kind": "regression",
                "model_mode": model.model_mode,
                "decode_mode": model.decode_mode,
                "total": model.num_samples,
            }
        else:
            raise InvalidParameterError(
                f"cannot publish tables for a {type(model).__name__}"
            )
        self._segment, arrays = _publish_arrays(named)
        self._manifest_path = _write_manifest([self._segment.name])
        self._plan = _WorkerPlan(
            segment=self._segment.name,
            dim=pipeline.dim,
            backend=backend,
            arrays=arrays,
            **plan_kw,
        )
        self._procs: list[Any] = []
        self._conns: list[Any] = []
        self._closed = False
        # Last-resort cleanup if the pool is dropped without close():
        # unlink the segment and drop the manifest (workers are daemonic,
        # they die with the parent).
        self._finalizer = weakref.finalize(
            self, _cleanup_segment, self._segment.name, str(self._manifest_path)
        )
        try:
            for i in range(workers):
                self._spawn(i)
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle ------------------------------------------------------
    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=proc_worker_main,
            args=(self._plan, child_conn),
            name=f"repro-serve-proc-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if index < len(self._procs):
            self._procs[index] = process
            self._conns[index] = parent_conn
        else:
            self._procs.append(process)
            self._conns.append(parent_conn)

    def _respawn(self, index: int) -> None:
        process, conn = self._procs[index], self._conns[index]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        if process.is_alive():  # pragma: no cover - pipe died first
            process.terminate()
        process.join(timeout=5)
        self._spawn(index)

    @property
    def segment_name(self) -> str:
        """The published segment's name (for leak checks and ops tooling)."""
        return self._segment.name

    @property
    def closed(self) -> bool:
        return self._closed

    def stale(self) -> bool:
        """True when the live model no longer matches the published tables.

        Online learning invalidates the materialised tables; the engine
        checks this per batch (O(1) identity check, O(d) count compare
        for the integer regressor) and serves inline when stale.
        """
        return self._stale_fn()

    # -- predict ---------------------------------------------------------------
    def predict(self, encoded: PackedHV) -> list[Hashable] | np.ndarray:
        """Predict a packed batch, sharded by row range across the workers.

        Ranges come from the same :func:`iter_slices` arithmetic as the
        thread-sharded predict, results merge in range order through the
        shared merge helpers, and classification winners are mapped to
        labels in the parent — so the output is exactly
        ``model.predict(encoded)``.
        """
        if self._closed:
            raise InvalidParameterError("ProcPredictPool is closed")
        n = batch_rows(encoded)
        if n == 0:
            return [] if self._class_order is not None else np.empty(0, dtype=np.float64)
        bounds = iter_slices(n, -(-n // self.workers))
        assignments: dict[int, list[tuple[int, np.ndarray]]] = {}
        for idx, (lo, hi) in enumerate(bounds):
            assignments.setdefault(idx % self.workers, []).append(
                (idx, np.ascontiguousarray(encoded.data[lo:hi]))
            )
        results = self._scatter_gather(assignments)
        parts = [results[idx] for idx in range(len(bounds))]
        if self._class_order is not None:
            order = self._class_order
            return merge_label_parts(
                [[order[int(i)] for i in part] for part in parts]
            )
        return merge_value_parts(parts)

    def _scatter_gather(
        self, assignments: dict[int, list[tuple[int, np.ndarray]]]
    ) -> dict[int, np.ndarray]:
        results: dict[int, np.ndarray] = {}
        failed: list[int] = []
        for wi, jobs in assignments.items():
            try:
                self._conns[wi].send(("predict", jobs))
            except (BrokenPipeError, OSError):
                failed.append(wi)
        for wi, jobs in assignments.items():
            if wi in failed:
                continue
            try:
                reply = self._conns[wi].recv()
            except (EOFError, OSError):
                failed.append(wi)
                continue
            self._consume(reply, results)
        # Recovery path: respawn each dead worker against the intact
        # segment and re-send only its ranges — exact, because workers
        # are stateless over frozen tables.
        for wi in failed:
            reply = None
            for _ in range(_MAX_RESPAWNS):
                self._respawn(wi)
                try:
                    self._conns[wi].send(("predict", assignments[wi]))
                    reply = self._conns[wi].recv()
                    break
                except (BrokenPipeError, EOFError, OSError):
                    reply = None
            if reply is None:
                raise RuntimeError(
                    f"serving worker {wi} died {_MAX_RESPAWNS} consecutive times; "
                    "giving up on process fan-out for this batch"
                )
            self._consume(reply, results)
        return results

    @staticmethod
    def _consume(reply: tuple, results: dict[int, np.ndarray]) -> None:
        if reply[0] == "error":
            raise RuntimeError(f"serving worker failed:\n{reply[1]}")
        for idx, part in reply[1]:
            results[idx] = part

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers, unlink the segment, drop the manifest (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        self._procs.clear()
        self._conns.clear()
        self._segment.close()
        self._finalizer()  # unlink + manifest removal, exactly once

    def __enter__(self) -> "ProcPredictPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcPredictPool(workers={self.workers}, "
            f"segment={self._segment.name!r}, closed={self._closed})"
        )
