"""Robustness of HDC models to bit corruption.

The paper's introduction motivates HDC with the holographic
representation's "inherent robustness since each bit carries exactly the
same amount of information".  This module quantifies that claim for the
models built here: corrupt a fraction of the bits of a trained model's
class-vectors (or of the query encodings — e.g. a noisy sensor or a
failing memory) and measure the accuracy degradation curve.

The characteristic HDC signature, asserted by the tests and shown in
``examples/noise_robustness.py``: accuracy degrades *gracefully* and
roughly symmetrically in the corruption fraction, staying near the clean
accuracy for corruptions of a few percent and reaching chance level only
as corruption approaches 50 % (where the hypervectors carry no
information at all).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import as_hypervector
from ..learning.classifier import CentroidClassifier

__all__ = ["flip_bits", "classifier_robustness_curve"]


def flip_bits(
    hvs: np.ndarray, fraction: float, seed: SeedLike = None
) -> np.ndarray:
    """Return a copy with a random ``fraction`` of each row's bits flipped.

    Flips an exact count ``round(fraction · d)`` per row at positions
    drawn without replacement — the standard bit-error model for HDC
    robustness studies.
    """
    arr = as_hypervector(hvs)
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError(
            f"fraction must lie in [0, 1], got {fraction}"
        )
    rng = ensure_rng(seed)
    single = arr.ndim == 1
    batch = arr[None, :].copy() if single else arr.copy()
    dim = batch.shape[-1]
    count = int(round(fraction * dim))
    if count:
        for row in batch.reshape(-1, dim):
            positions = rng.choice(dim, size=count, replace=False)
            row[positions] ^= 1
    return batch[0] if single else batch


def classifier_robustness_curve(
    classifier: CentroidClassifier,
    encoded: np.ndarray,
    labels: Sequence,
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    target: str = "queries",
    seed: SeedLike = None,
) -> dict[float, float]:
    """Accuracy of a trained classifier under increasing bit corruption.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.learning.classifier.CentroidClassifier`.
    encoded, labels:
        Evaluation set (already encoded).
    fractions:
        Corruption levels to probe.
    target:
        ``"queries"`` corrupts the encoded evaluation samples (sensor /
        channel noise); ``"model"`` corrupts the stored class-vectors
        (memory faults) by rebuilding a corrupted classifier for each
        level.
    seed:
        Randomness for the flips.

    Returns
    -------
    dict
        ``{fraction: accuracy}``, ordered as given.
    """
    if target not in ("queries", "model"):
        raise InvalidParameterError(
            f"target must be 'queries' or 'model', got {target!r}"
        )
    rng = ensure_rng(seed)
    labels = list(labels)
    curve: dict[float, float] = {}
    for fraction in fractions:
        if target == "queries":
            corrupted = flip_bits(encoded, fraction, seed=rng)
            curve[float(fraction)] = classifier.score(corrupted, labels)
        else:
            proxy = CentroidClassifier(classifier.dim, seed=rng)
            for cls in classifier.classes:
                noisy = flip_bits(classifier.class_vector(cls), fraction, seed=rng)
                proxy.fit(noisy[None, :], [cls])
            curve[float(fraction)] = proxy.score(encoded, labels)
    return curve
