"""Similarity-structure analysis of basis sets (Figures 3 and 6 data).

Figure 3 of the paper visualises the pairwise similarity ``1 − δ`` within
random, level and circular basis sets; Figure 6 shows, for a circular set,
the similarity of every member to a fixed reference member as the
``r``-hyperparameter varies.  These functions compute exactly those data
series; the benchmark harness prints them and the examples render them as
ASCII heatmaps.

All distances route through the shared similarity-kernel subsystem
(:mod:`repro.hdc.kernels`) on each basis set's cached packed table —
this module derives no distance arithmetic of its own.  Every function
threads an optional ``backend=`` argument (``"auto"``/``"gemm"``/
``"xor"``); all backends produce bit-identical matrices.
"""

from __future__ import annotations

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..basis import make_basis
from ..exceptions import InvalidParameterError

__all__ = [
    "basis_similarity_matrix",
    "figure3_data",
    "reference_similarity_profile",
    "figure6_data",
]

#: Basis kinds compared in Figure 3, in the paper's column order.
FIGURE3_KINDS = ("random", "level", "circular")


def basis_similarity_matrix(
    kind: str,
    size: int,
    dim: int,
    r: float = 0.0,
    seed: SeedLike = None,
    backend: str | None = None,
) -> np.ndarray:
    """Pairwise similarity matrix ``1 − δ`` of a freshly generated basis.

    Computed by the basis set itself over its cached packed table;
    ``backend`` selects the similarity kernel
    (:mod:`repro.hdc.kernels` — every choice is bit-identical).
    """
    basis = make_basis(kind, size, dim, r=r, seed=seed)
    return basis.similarity_matrix(backend=backend)


def figure3_data(
    size: int = 10,
    dim: int = 10_000,
    seed: SeedLike = None,
    backend: str | None = None,
) -> dict[str, np.ndarray]:
    """Similarity matrices for the three basis kinds of Figure 3.

    The paper's caption says "size 12" while its axes run 0–9; we default
    to 10 members (matching the axes) and let callers pick either.
    """
    rng = ensure_rng(seed)
    return {
        kind: basis_similarity_matrix(kind, size, dim, seed=rng, backend=backend)
        for kind in FIGURE3_KINDS
    }


def reference_similarity_profile(
    size: int,
    dim: int,
    r: float,
    reference: int = 0,
    seed: SeedLike = None,
    backend: str | None = None,
) -> np.ndarray:
    """Similarity of every circular-set member to a reference member.

    This is one polar trace of Figure 6: generate a circular set with the
    given ``r`` and return ``1 − δ(C_ref, C_i)`` for all ``i``.
    """
    if not 0 <= reference < size:
        raise InvalidParameterError(
            f"reference must index into the set of size {size}, got {reference}"
        )
    basis = make_basis("circular", size, dim, r=r, seed=seed)
    return basis.similarity_matrix(backend=backend)[reference]


def figure6_data(
    r_values: tuple[float, ...] = (0.0, 0.5, 1.0),
    size: int = 10,
    dim: int = 10_000,
    seed: SeedLike = None,
    backend: str | None = None,
) -> dict[float, np.ndarray]:
    """Reference-similarity profiles for each ``r`` of Figure 6."""
    rng = ensure_rng(seed)
    return {
        float(r): reference_similarity_profile(size, dim, r, seed=rng, backend=backend)
        for r in r_values
    }
