"""Plain-text rendering of tables and heatmaps.

The benchmark harness prints the same rows the paper's tables report and
ASCII renderings of its heatmap figures; everything here is side-effect
free (returns strings) so the tests can assert on the output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["format_table", "render_heatmap", "format_float"]

#: Shade ramp used by the ASCII heatmap, light → dark.
_SHADES = " .:-=+*#%@"


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly (fixed digits, no trailing noise)."""
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    digits: int = 3,
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with ``digits`` decimals; everything else via
    ``str``.  Column widths adapt to the longest cell.
    """
    headers = [str(h) for h in headers]
    rendered_rows: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format_float(cell, digits))
            else:
                cells.append(str(cell))
        if len(cells) != len(headers):
            raise InvalidParameterError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(cells) for cells in rendered_rows)
    return "\n".join(parts)


def render_heatmap(
    matrix: np.ndarray,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a matrix as an ASCII shade heatmap (dark = high).

    Used by the examples to show Figure 3's similarity structure in a
    terminal.  Values are clipped to ``[vmin, vmax]`` (defaulting to the
    matrix range) and mapped onto a 10-step shade ramp.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D matrix, got shape {arr.shape}")
    lo = float(arr.min()) if vmin is None else float(vmin)
    hi = float(arr.max()) if vmax is None else float(vmax)
    if hi <= lo:
        hi = lo + 1.0
    normalized = np.clip((arr - lo) / (hi - lo), 0.0, 1.0)
    indices = np.minimum((normalized * len(_SHADES)).astype(int), len(_SHADES) - 1)
    lines = ["".join(_SHADES[i] * 2 for i in row) for row in indices]
    return "\n".join(lines)
