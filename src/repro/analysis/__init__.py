"""Analysis and reporting: the data behind the paper's figures."""

from .reporting import format_float, format_table, render_heatmap
from .robustness import classifier_robustness_curve, flip_bits
from .similarity import (
    basis_similarity_matrix,
    figure3_data,
    figure6_data,
    reference_similarity_profile,
)

__all__ = [
    "basis_similarity_matrix",
    "figure3_data",
    "figure6_data",
    "reference_similarity_profile",
    "format_table",
    "format_float",
    "render_heatmap",
    "flip_bits",
    "classifier_robustness_curve",
]
