"""Shannon information content of basis-hypervector generation (Section 4.1).

The paper's theoretical argument: a generation process with more possible
outcomes assigns lower probability to each, hence each realised set
carries more Shannon information ``ℐ(ε) = log₂(1/P(ε))``.  Random sets are
maximal; the legacy level construction, with its deterministic pairwise
distances, is heavily constrained; Algorithm 1 relaxes the constraint and
recovers entropy.  This module provides:

* the elementary quantities (:func:`information_content`, :func:`entropy`),
* closed-form generation entropies for the three constructions
  (:func:`random_set_entropy`, :func:`legacy_level_set_entropy`,
  :func:`interpolated_level_set_entropy`), and
* a plug-in empirical estimator over the per-dimension column patterns of
  a generated set (:func:`empirical_column_entropy`), which the tests use
  to confirm the ordering legacy < interpolated < random empirically.

Entropies are reported in bits.  For the interpolated construction the
continuous filter Φ is *not* counted — only the distribution of the
resulting bit patterns matters, which is discrete.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "information_content",
    "entropy",
    "log2_binomial",
    "random_set_entropy",
    "legacy_level_set_entropy",
    "interpolated_level_set_entropy",
    "empirical_column_entropy",
]


def information_content(probability: float) -> float:
    """``ℐ(ε) = log₂(1/P(ε))`` — bits conveyed by an outcome of probability P."""
    if not 0.0 < probability <= 1.0:
        raise InvalidParameterError(
            f"probability must lie in (0, 1], got {probability}"
        )
    return -math.log2(probability)


def entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy ``H = −Σ p log₂ p`` of a discrete distribution (bits).

    Zero-probability entries contribute 0 (the usual ``0 log 0 = 0``
    convention).  The distribution must sum to 1 within tolerance.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if np.any(p < -1e-12):
        raise InvalidParameterError("probabilities must be non-negative")
    total = float(p.sum())
    if abs(total - 1.0) > 1e-6:
        raise InvalidParameterError(f"probabilities must sum to 1, got {total}")
    p = np.clip(p, 0.0, 1.0)
    nonzero = p[p > 0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def log2_binomial(n: int, k: int) -> float:
    """``log₂ C(n, k)`` via log-gamma (stable for hyperspace-sized ``n``)."""
    if k < 0 or k > n:
        raise InvalidParameterError(f"require 0 ≤ k ≤ n, got n={n}, k={k}")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2.0)


def random_set_entropy(size: int, dim: int) -> float:
    """Entropy of a random-hypervector set: ``m·d`` bits (uniform over ``H^m``)."""
    if size < 1 or dim < 1:
        raise InvalidParameterError("size and dim must be positive")
    return float(size * dim)


def legacy_level_set_entropy(size: int, dim: int) -> float:
    """Outcome entropy of the sequential-flip (legacy) level set.

    The observable outcome is determined by (a) the uniform first level
    (``d`` bits) and (b) the assignment of positions to flip blocks: each
    of the ``d`` positions is either never flipped (``⌊d/2⌋`` of them,
    exactly) or belongs to exactly one of the ``m − 1`` blocks (of fixed
    sizes ``b_k``).  The number of assignments is the multinomial
    coefficient ``d! / (⌊d/2⌋! · Π_k b_k!)``, so

    ``H = d + log₂( d! / (⌈d/2⌉! · Π_k b_k!) )``.

    Quantitatively this sits *just below* the interpolated construction's
    entropy: the multinomial constraint (every block has an exact size)
    costs ``Θ(m · log d)`` bits relative to Algorithm 1's per-dimension
    i.i.d. draw.  The per-dimension leading terms coincide — an honest
    refinement of Section 4.1: the entropy gap between the two level
    generators is real but logarithmic-order, while the gap to *random*
    sets is ``Θ(m · d)`` and dominates everything.
    """
    if size < 2 or dim < 2:
        raise InvalidParameterError("size must be ≥ 2 and dim ≥ 2")
    half = dim // 2
    unflipped = dim - half
    # Block sizes as numpy's array_split makes them: near-equal integers.
    base, remainder = divmod(half, size - 1)
    block_sizes = [base + 1] * remainder + [base] * (size - 1 - remainder)
    log2_assignments = (
        math.lgamma(dim + 1)
        - math.lgamma(unflipped + 1)
        - sum(math.lgamma(b + 1) for b in block_sizes)
    ) / math.log(2.0)
    return float(dim + log2_assignments)


def interpolated_level_set_entropy(size: int, dim: int) -> float:
    """Entropy of the bit patterns produced by Algorithm 1.

    Per dimension ``∂`` the observable outcome is the column
    ``(L_1(∂), …, L_m(∂))``.  The endpoints contribute 2 bits.  When
    ``L_1(∂) = L_m(∂)`` (probability 1/2) the column is constant; when
    they differ, the column is a step function whose step position is the
    band of Φ(∂) among the ``m − 1`` equiprobable threshold bands:
    ``log₂(m − 1)`` further bits.  Hence

    ``H = d · (2 + ½ · log₂(m − 1))``.

    Larger than the legacy construction's entropy for every ``m ≥ 3``
    at realistic ``d`` — the quantitative form of Section 4.1's argument.
    """
    if size < 2 or dim < 1:
        raise InvalidParameterError("size must be ≥ 2 and dim ≥ 1")
    if size == 2:
        return float(2 * dim)
    return float(dim * (2.0 + 0.5 * math.log2(size - 1)))


def empirical_column_entropy(vectors: np.ndarray) -> float:
    """Plug-in entropy (bits per dimension) of a set's column patterns.

    Treats each dimension's column ``(v_1(∂), …, v_m(∂))`` as one draw
    from the column distribution and estimates its entropy from the
    empirical pattern frequencies.  Biased low for small ``d`` (plug-in
    estimators always are).

    Interpretation notes:

    * random sets approach ``m`` bits/dimension (all ``2^m`` patterns),
      while any level construction approaches ``2 + ½ log₂(m − 1)``
      (monotone step-function columns) — the estimator separates those
      cleanly;
    * legacy vs interpolated level sets share the same *marginal* column
      distribution; their entropy gap lives in the joint (the legacy
      flip plan fixes exact per-pattern counts).  Compare pattern-count
      multisets across seeds for that distinction, not this estimator.
    """
    arr = np.asarray(vectors)
    if arr.ndim != 2:
        raise InvalidParameterError(f"expected an (m, d) set, got shape {arr.shape}")
    m, d = arr.shape
    if m > 62:
        raise InvalidParameterError(
            "column-pattern entropy supports at most 62 members (bit packing)"
        )
    weights = (1 << np.arange(m, dtype=np.int64))[:, None]
    codes = (arr.astype(np.int64) * weights).sum(axis=0)
    _, counts = np.unique(codes, return_counts=True)
    return entropy(counts / d)
