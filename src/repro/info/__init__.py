"""Information-theoretic analysis of basis sets (Section 4.1)."""

from .content import (
    empirical_column_entropy,
    entropy,
    information_content,
    interpolated_level_set_entropy,
    legacy_level_set_entropy,
    log2_binomial,
    random_set_entropy,
)

__all__ = [
    "information_content",
    "entropy",
    "log2_binomial",
    "random_set_entropy",
    "legacy_level_set_entropy",
    "interpolated_level_set_entropy",
    "empirical_column_entropy",
]
