"""Circular-hypervectors — the paper's main contribution (Section 5.1).

A circular basis set ``C = {C_1, …, C_m}`` embeds ``m`` equidistant points
of a circle into Hamming space so that hypervector distance tracks angular
distance and, crucially, the set has no endpoints: the neighbour of
``C_m`` is ``C_1``, and the point opposite any member is quasi-orthogonal
to it.

Construction (Figure 5), two phases:

1. **Phase 1** — the first half of the circle is an interpolation level
   set (Algorithm 1, optionally r-generalised per Section 5.2):
   ``C_i = L_i`` for ``i ∈ {1, …, m/2 + 1}``, making ``C_1`` and
   ``C_{m/2+1}`` quasi-orthogonal.
2. **Phase 2** — the second half re-applies the phase-1 *transitions*
   ``T_i = C_i ⊗ C_{i+1}`` in order:
   ``C_i = C_{i−1} ⊗ T_{i−m/2−1}`` for ``i ∈ {m/2+2, …, m}``.
   Because binding is self-inverse, each re-applied transition walks the
   vector back toward ``C_1``, closing the circle.

Realized geometry.  With Algorithm-1 levels the transitions have disjoint
per-bit supports (each bit's filter value ``Φ(∂)`` falls in exactly one
threshold band), so the expected pairwise distance equals the shortest
walk around the circle:

``E[δ(C_i, C_j)] = steps(i, j) / m``  where ``steps`` is the circular
index distance (``r = 0``).

The paper states the goal as ``E[δ] = ρ/2 = (1 − cos Δθ)/4``; the walk law
realized by the construction agrees with it exactly at ``Δθ ∈ {0, π/2, π}``
(in particular opposite points are quasi-orthogonal) and differs by at
most ≈ 0.11 in between — no XOR-chain construction can realise the cosine
law for all pairs, because XOR chains produce path metrics.  The tests
verify the walk law; EXPERIMENTS.md records this nuance.

Odd sizes follow the paper's footnote: a set of odd cardinality ``m`` is
the subset ``{C_1, C_3, …, C_{2m−1}}`` of a generated set of size ``2m``.
"""

from __future__ import annotations

import math

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from .base import BasisSet
from .rvalue import segment_interval, transitions_per_subset, xor_combine, interpolated_chain

__all__ = ["CircularBasis"]


def _interval_symdiff(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Measure of the symmetric difference of two (possibly empty) intervals."""
    a_lo, a_hi = a
    b_lo, b_hi = b
    len_a = max(0.0, a_hi - a_lo)
    len_b = max(0.0, b_hi - b_lo)
    overlap = max(0.0, min(a_hi, b_hi) - max(a_lo, b_lo)) if len_a and len_b else 0.0
    return len_a + len_b - 2.0 * overlap


class CircularBasis(BasisSet):
    """Basis-hypervectors for circular data.

    Parameters
    ----------
    size:
        Number of members ``m ≥ 2`` (odd sizes are generated via the
        even-set subsampling rule of the paper's footnote).
    dim:
        Hyperspace dimensionality ``d``.
    r:
        Section 5.2 hyperparameter in ``[0, 1]``; applies to phase 1 only,
        exactly as the paper specifies.  ``r = 0`` is the pure circular
        set; ``r = 1`` makes phase 1 (and hence the whole set)
        random-like.
    seed:
        Randomness source.

    Example
    -------
    >>> basis = CircularBasis(size=24, dim=10_000, seed=11)   # hours of a day
    >>> emb = basis.circular_embedding(period=24.0)
    >>> hv_23, hv_0 = emb.encode(23.0), emb.encode(0.0)
    >>> # adjacent hours stay similar even across midnight:
    >>> float((hv_23 != hv_0).mean()) < 0.1
    True
    """

    def __init__(self, size: int, dim: int, r: float = 0.0, seed: SeedLike = None) -> None:
        if size < 2:
            raise InvalidParameterError(
                f"a circular set needs at least 2 members, got {size}"
            )
        if dim < 1:
            raise InvalidParameterError(f"dimension must be positive, got {dim}")
        self.r = float(r)
        if not (0.0 <= self.r <= 1.0) or not math.isfinite(self.r):
            raise InvalidParameterError(f"r must lie in [0, 1], got {r}")
        rng = ensure_rng(seed)

        if size % 2 == 0:
            full = self._generate_even(size, dim, self.r, rng)
            vectors = full
            self._step = 1
            self._half = size // 2
        else:
            # Paper footnote: odd sets are every-other member of a 2m set.
            full = self._generate_even(2 * size, dim, self.r, rng)
            vectors = full[::2]
            self._step = 2
            self._half = size
        super().__init__(vectors)

    @staticmethod
    def _generate_even(
        size: int, dim: int, r: float, rng: np.random.Generator
    ) -> np.ndarray:
        half = size // 2
        phase1 = interpolated_chain(half + 1, dim, r=r, seed=rng)
        transitions = np.bitwise_xor(phase1[:-1], phase1[1:])  # T_1 … T_half

        vectors = np.empty((size, dim), dtype=phase1.dtype)
        vectors[: half + 1] = phase1
        for k in range(1, half):
            vectors[half + k] = np.bitwise_xor(vectors[half + k - 1], transitions[k - 1])
        return vectors

    # -- geometry helpers ---------------------------------------------------------
    @property
    def angles(self) -> np.ndarray:
        """Angle represented by each member: ``θ_i = 2π (i − 1) / m``."""
        m = len(self)
        return 2.0 * math.pi * np.arange(m) / m

    @property
    def transitions_per_subset(self) -> float:
        """Phase-1 sub-set width ``n = r + (1 − r) · (m/2)`` (Section 5.2)."""
        return transitions_per_subset(self._half + 1, self.r)

    def circular_steps(self, i: int, j: int) -> int:
        """Shortest index walk between members ``i`` and ``j`` on the circle."""
        m = len(self)
        diff = abs(i % m - j % m)
        return min(diff, m - diff)

    def _band_interval(
        self, position: int, segment: int, n: float
    ) -> tuple[float, float]:
        """Flip band (relative to ``C_1``) of a member within one sub-set.

        ``position`` is the member's 0-based location on the *full* even
        circle.  Up-walk members (``p ≤ H``) have flipped the lower part
        ``[seg_lo, min(p, seg_hi)]`` of the walk coordinate; down-walk
        members (``p > H``, retrace coordinate ``c = p − H``) have the
        upper part ``[max(c, seg_lo), seg_hi]`` still flipped.
        """
        total = float(self._half)
        seg_lo, seg_hi = segment_interval(segment, n, total)
        if position <= self._half:
            return seg_lo, min(float(position), seg_hi)
        retrace = float(position - self._half)
        return max(retrace, seg_lo), seg_hi

    def expected_distance(self, i: int, j: int) -> float:
        """Theoretical ``E[δ(C_i, C_j)]`` under the two-phase construction.

        For ``r = 0`` this reduces to the walk law ``steps(i, j) / (2H)``
        (``H = m/2`` transitions per half); for ``r > 0`` it accounts for
        the segmented phase 1 exactly, combining per-sub-set flip
        probabilities with the independence rule ``p ⊕ q = p + q − 2pq``.
        """
        m = len(self)
        if not (-m <= i < m and -m <= j < m):
            raise IndexError(f"index out of range for a basis of size {m}")
        pos_i = (i % m) * self._step
        pos_j = (j % m) * self._step
        if pos_i == pos_j:
            return 0.0
        n = self.transitions_per_subset
        total = float(self._half)
        prob = 0.0
        segment = 0
        while True:
            seg_lo, seg_hi = segment_interval(segment, n, total)
            if seg_hi <= seg_lo + 1e-12:
                break
            band_i = self._band_interval(pos_i, segment, n)
            band_j = self._band_interval(pos_j, segment, n)
            q = _interval_symdiff(band_i, band_j) / (2.0 * n)
            prob = xor_combine(prob, q)
            if seg_hi >= total - 1e-12:
                break
            segment += 1
        return prob
