"""Random-hypervector basis sets (Section 3.1).

Each member is sampled uniformly and independently from ``{0, 1}^d``, so
every pair is quasi-orthogonal with overwhelming probability: the pairwise
normalized Hamming distance is ``Binomial(d, 1/2) / d``, concentrating
around ``1/2`` with standard deviation ``1 / (2 √d)``.

Random sets carry the largest possible information content (the sample
space is all of ``H^m``) but map *no* correlation structure from the input
space to the hyperspace — the right choice for symbols and categorical
data, and the baseline every experiment in the paper compares against.
"""

from __future__ import annotations

from .._rng import SeedLike
from ..hdc.hypervector import random_hypervectors
from .base import BasisSet

__all__ = ["RandomBasis"]


class RandomBasis(BasisSet):
    """A basis set of ``size`` uniform i.i.d. hypervectors.

    Parameters
    ----------
    size:
        Number of members ``m ≥ 1``.
    dim:
        Hyperspace dimensionality ``d``.
    seed:
        Randomness source (``None``, int, or a ``numpy.random.Generator``).

    Example
    -------
    >>> basis = RandomBasis(size=26, dim=10_000, seed=7)   # one per letter
    >>> round(basis.distance(0, 1), 1)
    0.5
    """

    def __init__(self, size: int, dim: int, seed: SeedLike = None) -> None:
        super().__init__(random_hypervectors(size, dim, seed))

    def expected_distance(self, i: int, j: int) -> float:
        """``0`` on the diagonal, ``1/2`` everywhere else (quasi-orthogonal)."""
        m = len(self)
        if not (-m <= i < m and -m <= j < m):
            raise IndexError(f"index out of range for a basis of size {m}")
        return 0.0 if i % m == j % m else 0.5
