"""Discretizers: the ξ-grids that map data values to basis indices.

Section 3.2 of the paper represents an interval ``[a, b]`` by placing ``m``
points ``ξ_i = a + (i − 1)(b − a)/(m − 1)`` evenly over it and mapping a
real ``x`` to the hypervector of the nearest point.  For circular data the
grid instead divides the period into ``m`` equal arcs with no duplicated
endpoint (the point after ``ξ_m`` wraps to ``ξ_1``).

A discretizer is the value-side half of an :class:`~repro.basis.base.Embedding`;
the hypervector-side half is a :class:`~repro.basis.base.BasisSet`.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..exceptions import EncodingDomainError, InvalidParameterError

__all__ = ["Discretizer", "LinearDiscretizer", "CircularDiscretizer"]

TWO_PI = 2.0 * math.pi


class Discretizer(abc.ABC):
    """Bidirectional mapping between data values and grid indices."""

    def __init__(self, size: int) -> None:
        if not isinstance(size, (int, np.integer)) or isinstance(size, bool):
            raise InvalidParameterError(f"size must be an integer, got {size!r}")
        if size < 2:
            raise InvalidParameterError(f"size must be at least 2, got {size}")
        self._size = int(size)

    @property
    def size(self) -> int:
        """Number of grid points ``m``."""
        return self._size

    @abc.abstractmethod
    def index(self, values: np.ndarray | float) -> np.ndarray:
        """Map value(s) to the index of the nearest grid point."""

    @abc.abstractmethod
    def value(self, indices: np.ndarray | int) -> np.ndarray:
        """Map grid indices back to their representative values ``ξ_i``."""

    @property
    @abc.abstractmethod
    def points(self) -> np.ndarray:
        """The full grid ``(ξ_1, …, ξ_m)`` as a float array."""

    def round_trip(self, values: np.ndarray | float) -> np.ndarray:
        """Quantise values to their nearest representative: ``value(index(x))``."""
        return self.value(self.index(values))


class LinearDiscretizer(Discretizer):
    """Even grid over a closed interval ``[low, high]`` (Section 3.2).

    Parameters
    ----------
    low, high:
        Interval endpoints ``a < b``.
    size:
        Number of grid points ``m ≥ 2``.
    clip:
        If ``True`` (default), out-of-interval values snap to the nearest
        endpoint — convenient when test data slightly exceeds the training
        range.  If ``False``, out-of-interval values raise
        :class:`~repro.exceptions.EncodingDomainError`.
    """

    def __init__(self, low: float, high: float, size: int, clip: bool = True) -> None:
        super().__init__(size)
        low = float(low)
        high = float(high)
        if not math.isfinite(low) or not math.isfinite(high):
            raise InvalidParameterError("interval endpoints must be finite")
        if not low < high:
            raise InvalidParameterError(
                f"interval must satisfy low < high, got [{low}, {high}]"
            )
        self.low = low
        self.high = high
        self.clip = bool(clip)
        self._step = (high - low) / (self._size - 1)

    @property
    def points(self) -> np.ndarray:
        return self.low + self._step * np.arange(self._size)

    def index(self, values: np.ndarray | float) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if not np.isfinite(arr).all():
            raise EncodingDomainError("values must be finite")
        if self.clip:
            arr = np.clip(arr, self.low, self.high)
        elif np.any(arr < self.low) or np.any(arr > self.high):
            raise EncodingDomainError(
                f"value outside the interval [{self.low}, {self.high}]"
            )
        idx = np.rint((arr - self.low) / self._step).astype(np.int64)
        return np.clip(idx, 0, self._size - 1)

    def value(self, indices: np.ndarray | int) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self._size):
            raise InvalidParameterError(
                f"index out of range for a grid of size {self._size}"
            )
        return self.low + self._step * idx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearDiscretizer(low={self.low}, high={self.high}, "
            f"size={self._size}, clip={self.clip})"
        )


class CircularDiscretizer(Discretizer):
    """Even grid over a circle of given period (Section 5).

    Grid point ``i`` sits at angle ``low + period · (i − 1) / m``; unlike
    the linear grid there is no duplicated endpoint, because on a circle
    ``low`` and ``low + period`` are the same point.  Any real value is
    accepted — it is wrapped into the fundamental period first — so this
    discretizer never raises a domain error.

    ``period`` defaults to ``2π`` (angles in radians); pass ``period=24``
    for hours of a day, ``period=365.2425`` for days of a year, etc.
    """

    def __init__(self, size: int, low: float = 0.0, period: float = TWO_PI) -> None:
        super().__init__(size)
        period = float(period)
        if not math.isfinite(period) or period <= 0:
            raise InvalidParameterError(f"period must be positive, got {period}")
        self.low = float(low)
        self.period = period
        self._step = period / self._size

    @property
    def points(self) -> np.ndarray:
        return self.low + self._step * np.arange(self._size)

    def index(self, values: np.ndarray | float) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if not np.isfinite(arr).all():
            raise EncodingDomainError("values must be finite")
        phase = (arr - self.low) / self._step
        idx = np.rint(phase).astype(np.int64) % self._size
        return idx

    def value(self, indices: np.ndarray | int) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self._size):
            raise InvalidParameterError(
                f"index out of range for a grid of size {self._size}"
            )
        return self.low + self._step * idx

    def arc_steps(self, i: np.ndarray | int, j: np.ndarray | int) -> np.ndarray:
        """Circular index distance: shortest walk between grid slots.

        ``arc_steps(i, j) ∈ [0, m/2]`` counts grid steps the short way
        around; it is the index-space analogue of the angular distance ρ.
        """
        a = np.asarray(i, dtype=np.int64) % self._size
        b = np.asarray(j, dtype=np.int64) % self._size
        diff = np.abs(a - b)
        return np.minimum(diff, self._size - diff)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircularDiscretizer(size={self._size}, low={self.low}, "
            f"period={self.period})"
        )
