"""The r-interpolation machinery of Section 5.2.

The paper controls the trade-off between correlation preservation and
information content with a hyperparameter ``r ∈ [0, 1]``: the generated
chain is a concatenation of independent Algorithm-1 level sets, where each
sub-set spans ``n = r + (1 − r)(m − 1)`` transitions and the last
hypervector of one sub-set is the first hypervector of the next.  Member
``l`` uses the interpolation threshold ``τ_l = 1 − ((l − 1) mod n) / n``.

* ``r = 0`` — a single sub-set spanning all ``m − 1`` transitions: exactly
  Algorithm 1 (maximum correlation preservation).
* ``r = 1`` — every sub-set holds one transition, i.e. every member is a
  fresh uniform sample: a random-hypervector set (maximum information
  content).

This module hosts the chain generator shared by
:class:`~repro.basis.level.LevelBasis` and
:class:`~repro.basis.circular.CircularBasis`, plus the *exact* expected
pairwise flip probabilities of the construction, which the property-based
tests verify empirically:

* within one sub-set a walk of length ``Δt`` flips each bit with
  probability ``Δt / (2n)`` (Proposition 4.1 with ``m − 1 → n``),
* flips in different sub-sets are independent per bit (fresh endpoint and
  fresh filter Φ per sub-set), so probabilities combine as
  ``p ⊕ q = p + q − 2pq``.
"""

from __future__ import annotations

import math

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import BIT_DTYPE

__all__ = [
    "transitions_per_subset",
    "interpolated_chain",
    "xor_combine",
    "chain_flip_probability",
    "segment_interval",
]

#: Numerical tolerance when deciding that a chain position sits exactly on a
#: sub-set boundary (positions are integers, boundaries multiples of a float).
_BOUNDARY_TOL = 1e-9


def _validate_r(r: float) -> float:
    r = float(r)
    if not (0.0 <= r <= 1.0) or not math.isfinite(r):
        raise InvalidParameterError(f"r must lie in [0, 1], got {r}")
    return r


def transitions_per_subset(size: int, r: float) -> float:
    """Number of transitions ``n = r + (1 − r)(m − 1)`` per sub-level-set.

    ``size`` is the total number of hypervectors ``m`` in the concatenated
    chain.  ``n`` decreases monotonically from ``m − 1`` (at ``r = 0``) to
    ``1`` (at ``r = 1``).
    """
    if size < 2:
        raise InvalidParameterError(f"a chain needs at least 2 members, got {size}")
    r = _validate_r(r)
    return r + (1.0 - r) * (size - 1)


def interpolated_chain(
    size: int,
    dim: int,
    r: float = 0.0,
    seed: SeedLike = None,
    total_transitions: float | None = None,
) -> np.ndarray:
    """Generate a chain of ``size`` hypervectors with sub-set width ``n``.

    This is the generalised Algorithm 1.  Member ``l`` (1-based) sits at
    chain position ``t = l − 1``; sub-set ``s`` covers positions
    ``[s·n, (s+1)·n]``.  Within a sub-set with endpoint anchors ``A`` and
    ``B`` and filter ``Φ ~ U[0, 1]^d``, the member at in-set position ``p``
    takes bit ``∂`` from ``A`` when ``Φ(∂) < τ`` with ``τ = 1 − p / n``,
    otherwise from ``B``.  Crossing a boundary promotes ``B`` to the new
    ``A`` and draws a fresh ``B`` and ``Φ``.

    Parameters
    ----------
    size:
        Number of hypervectors ``m ≥ 2``.
    dim:
        Hyperspace dimensionality ``d``.
    r:
        Interpolation hyperparameter in ``[0, 1]``.
    seed:
        Randomness source.
    total_transitions:
        Override for the sub-set width computation: when the chain is the
        first phase of a circular set, the paper derives ``n`` from the
        phase-1 member count, which equals ``size``; level sets use the
        default.  Supplied as the number of transitions the chain spans
        when that differs from ``size − 1`` (not normally needed).

    Returns
    -------
    numpy.ndarray
        ``(size, dim)`` table of ``uint8`` bits.
    """
    if dim < 1:
        raise InvalidParameterError(f"dimension must be positive, got {dim}")
    if size < 2:
        raise InvalidParameterError(f"a chain needs at least 2 members, got {size}")
    r = _validate_r(r)
    n = transitions_per_subset(size, r)
    del total_transitions  # reserved; width always follows the paper's formula
    rng = ensure_rng(seed)

    out = np.empty((size, dim), dtype=BIT_DTYPE)
    anchor_a = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
    anchor_b = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
    phi = rng.random(dim)
    segment_start = 0.0
    out[0] = anchor_a

    for l in range(2, size + 1):
        t = float(l - 1)
        # Advance across every boundary the position has reached.
        while t >= segment_start + n - _BOUNDARY_TOL:
            segment_start += n
            anchor_a = anchor_b
            anchor_b = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
            phi = rng.random(dim)
        p = t - segment_start
        if p <= _BOUNDARY_TOL:
            out[l - 1] = anchor_a
        else:
            tau = 1.0 - p / n
            out[l - 1] = np.where(phi < tau, anchor_a, anchor_b)
    return out


def xor_combine(p: float, q: float) -> float:
    """Probability that exactly one of two independent flip events occurs.

    If a bit flips with probability ``p`` in one sub-set and independently
    with probability ``q`` in another, it ends up different with
    probability ``p + q − 2pq``.  Associative and commutative, with
    identity 0 and absorbing point 1/2 — which is why long chains saturate
    at quasi-orthogonality instead of overshooting.
    """
    return p + q - 2.0 * p * q


def segment_interval(
    segment: int, n: float, total: float
) -> tuple[float, float]:
    """Chain-position interval ``[lo, hi]`` covered by sub-set ``segment``.

    The final sub-set may be partial when ``total`` is not an integral
    multiple of ``n``.
    """
    lo = segment * n
    hi = min((segment + 1) * n, total)
    return lo, hi


def chain_flip_probability(t_a: float, t_b: float, n: float, total: float) -> float:
    """Exact per-bit flip probability between chain positions ``t_a, t_b``.

    Walks every sub-set the interval ``[min, max]`` crosses, accumulates
    the within-sub-set probability ``Δt / (2n)`` and combines across
    sub-sets with :func:`xor_combine`.  This is the theoretical
    ``E[δ]`` for members of :func:`interpolated_chain` and is validated
    empirically by the test-suite.
    """
    if n <= 0:
        raise InvalidParameterError(f"sub-set width must be positive, got {n}")
    lo, hi = sorted((float(t_a), float(t_b)))
    if lo < -_BOUNDARY_TOL or hi > total + _BOUNDARY_TOL:
        raise InvalidParameterError(
            f"positions must lie in [0, {total}], got ({t_a}, {t_b})"
        )
    prob = 0.0
    segment = int(math.floor(lo / n + _BOUNDARY_TOL))
    while True:
        seg_lo, seg_hi = segment_interval(segment, n, total)
        if seg_lo >= hi - _BOUNDARY_TOL:
            break
        a = min(max(lo, seg_lo), seg_hi)
        b = min(max(hi, seg_lo), seg_hi)
        q = (b - a) / (2.0 * n)
        prob = xor_combine(prob, q)
        segment += 1
    return prob
