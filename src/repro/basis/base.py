"""Common interface for basis-hypervector sets.

A *basis-hypervector set* (the central subject of the paper) is a table of
``m`` stochastically generated ``d``-dimensional hypervectors whose
pairwise-distance structure encodes a relationship between the atomic
pieces of information they represent:

* random sets — all pairs quasi-orthogonal (no correlation),
* level sets — distance grows linearly with index separation,
* circular sets — distance follows the circular (wrap-around) separation.

:class:`BasisSet` provides the table plumbing plus the analysis helpers
(pairwise similarity/distance matrices — the Figure 3 data).  Each concrete
set also knows its *theoretical* expected pairwise distance
(:meth:`BasisSet.expected_distance`), which the test-suite checks against
empirical averages.

:class:`Embedding` couples a basis set with a
:class:`~repro.basis.quantize.Discretizer`, yielding the encoding function
``φ : X → H`` of Section 3.2 (and its inverse ``φ⁻¹`` needed for
regression labels, Section 2.3).
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import InvalidParameterError
from ..hdc.coerce import as_packed_batch
from ..hdc.hypervector import as_hypervector
from ..hdc.kernels import pairwise_hamming
from ..hdc.ops import hamming_distance
from ..hdc.packed import PackedHV
from .quantize import Discretizer

__all__ = ["BasisSet", "Embedding"]


class BasisSet(abc.ABC):
    """A table of ``m`` basis-hypervectors of dimension ``d``.

    Concrete subclasses generate :attr:`vectors` in their constructor; this
    base class is agnostic to how they were produced.
    """

    def __init__(self, vectors: np.ndarray) -> None:
        arr = as_hypervector(vectors)
        if arr.ndim != 2:
            raise InvalidParameterError(
                f"a basis set is a (m, d) table, got shape {arr.shape}"
            )
        if arr.shape[0] < 1:
            raise InvalidParameterError("a basis set needs at least one hypervector")
        self._vectors = arr
        self._packed: PackedHV | None = None  # lazily built packed table

    # -- table access ---------------------------------------------------------
    @property
    def vectors(self) -> np.ndarray:
        """The ``(m, d)`` table of basis-hypervectors."""
        return self._vectors

    @property
    def packed(self) -> PackedHV:
        """The table in bit-packed form, built once and cached.

        This is what the distance kernels and the regression decode scan:
        ``m × ceil(d / 8)`` bytes instead of ``m × d``.
        """
        if self._packed is None:
            self._packed = PackedHV.pack(self._vectors)
        return self._packed

    @property
    def dim(self) -> int:
        """Hyperspace dimensionality ``d``."""
        return self._vectors.shape[1]

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def __getitem__(self, index) -> np.ndarray:
        """Row access; supports ints, slices and index arrays (numpy rules)."""
        return self._vectors[index]

    # -- geometry ----------------------------------------------------------------
    def distance(self, i: int, j: int) -> float:
        """Empirical normalized Hamming distance between members ``i`` and ``j``."""
        return float(hamming_distance(self._vectors[i], self._vectors[j]))

    def distance_matrix(self, backend: str | None = None) -> np.ndarray:
        """All-pairs normalized Hamming distance, shape ``(m, m)``.

        Runs on the cached packed table through the similarity-kernel
        subsystem (:mod:`repro.hdc.kernels`), so repeated analyses never
        re-pack the vectors; ``backend`` forces a kernel (bit-identical).
        """
        return pairwise_hamming(self.packed, backend=backend)

    def similarity_matrix(self, backend: str | None = None) -> np.ndarray:
        """All-pairs similarity ``1 − δ`` — the quantity plotted in Figure 3."""
        return 1.0 - self.distance_matrix(backend=backend)

    @abc.abstractmethod
    def expected_distance(self, i: int, j: int) -> float:
        """Theoretical ``E[δ(v_i, v_j)]`` for this construction.

        Used by the property-based tests: the empirical pairwise distance
        of a freshly generated set must match this value within the
        binomial concentration bound for dimension ``d``.
        """

    def expected_distance_matrix(self) -> np.ndarray:
        """Matrix of :meth:`expected_distance` over all pairs."""
        m = len(self)
        out = np.empty((m, m), dtype=np.float64)
        for i in range(m):
            for j in range(m):
                out[i, j] = self.expected_distance(i, j)
        return out

    # -- embedding conveniences ---------------------------------------------------
    def linear_embedding(self, low: float, high: float, clip: bool = True) -> "Embedding":
        """Couple this basis with a linear ξ-grid over ``[low, high]``.

        Returns an :class:`Embedding` whose discretizer has exactly one
        grid point per basis member (Section 3.2).
        """
        from .quantize import LinearDiscretizer

        return Embedding(self, LinearDiscretizer(low, high, len(self), clip=clip))

    def circular_embedding(self, low: float = 0.0, period: float | None = None) -> "Embedding":
        """Couple this basis with a circular grid of the given period.

        ``period`` defaults to ``2π`` (angles in radians).  Natural for
        circular basis sets, but permitted for any basis — encoding
        circular data with random or level sets is exactly the baseline
        configuration of the paper's experiments.
        """
        import math

        from .quantize import CircularDiscretizer

        if period is None:
            period = 2.0 * math.pi
        return Embedding(self, CircularDiscretizer(len(self), low=low, period=period))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={len(self)}, dim={self.dim})"


class Embedding:
    """The encoding function ``φ`` of Section 3.2: value → hypervector.

    Couples a :class:`~repro.basis.quantize.Discretizer` (value → index)
    with a :class:`BasisSet` (index → hypervector).  The inverse direction
    (hypervector → value, via nearest-member cleanup) implements the
    ``φ_ℓ⁻¹`` used to decode regression labels (Section 2.3).
    """

    def __init__(self, basis: BasisSet, discretizer: Discretizer) -> None:
        if len(basis) != discretizer.size:
            raise InvalidParameterError(
                f"basis size ({len(basis)}) must equal discretizer size "
                f"({discretizer.size})"
            )
        self.basis = basis
        self.discretizer = discretizer

    @property
    def dim(self) -> int:
        """Hyperspace dimensionality of the underlying basis set."""
        return self.basis.dim

    def __len__(self) -> int:
        return len(self.basis)

    def indices(self, values: np.ndarray | float) -> np.ndarray:
        """Quantise values to basis indices (the ``arg min |x − ξ_i|`` step)."""
        return self.discretizer.index(values)

    def encode(self, values: np.ndarray | float) -> np.ndarray:
        """Encode value(s) to hypervector(s): ``φ(x) = B[index(x)]``.

        A scalar yields shape ``(d,)``; an ``(n,)`` array yields ``(n, d)``.
        """
        idx = self.indices(values)
        return self.basis[idx]

    def encode_packed(self, values: np.ndarray | float) -> PackedHV:
        """Encode value(s) directly to bit-packed hypervector(s).

        Rows are gathered from the cached packed basis table, so encoding
        a batch of ``n`` values materialises ``n × ceil(d / 8)`` bytes and
        never touches the unpacked representation.
        """
        idx = self.indices(values)
        return PackedHV(self.basis.packed.data[idx], self.dim)

    def decode(self, hv: np.ndarray | PackedHV, backend: str | None = None) -> np.ndarray:
        """Decode hypervector(s) to representative value(s) ``ξ_l``.

        Performs a cleanup against the whole basis table (nearest member
        by Hamming distance, via the similarity-kernel subsystem) and
        returns that member's grid value — exactly the two-step decode
        ``l = arg min δ(·, L_i)``, ``x = φ_ℓ⁻¹(L_l)`` from the paper's
        regression framework.  Accepts packed or unpacked queries;
        ``backend`` forces a kernel (bit-identical).
        """
        batch, single = as_packed_batch(hv, self.dim, "Embedding.decode")
        dist = pairwise_hamming(batch, self.basis.packed, backend=backend)
        idx = np.argmin(dist, axis=-1)
        values = self.discretizer.value(idx)
        return values[0] if single else values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Embedding({self.basis!r}, {self.discretizer!r})"
