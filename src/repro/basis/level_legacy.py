"""The pre-existing level-hypervector construction (Section 4, background).

This is the method of Rahimi et al. [34] and Widdows & Cohen [42] that the
paper improves upon: start from a uniform random ``L_1`` and obtain each
subsequent level by flipping a fixed quota of bits, never unflipping any,
so that ``L_1`` and ``L_m`` end up *exactly* orthogonal (``d/2`` differing
bits).

Because every pairwise distance is (up to integer rounding) deterministic,
the construction has far fewer possible outcomes than the interpolation
method of Algorithm 1 — the information-content argument of Section 4.1 —
and it is the "Level" baseline whose replacement the paper motivates.

Implementation note: we allocate exactly ``⌊d/2⌋`` flip positions up front
(a uniform random subset), split them into ``m − 1`` nearly equal
consecutive blocks, and flip block ``i`` to move from ``L_i`` to
``L_{i+1}``.  This realises the textbook construction with exact endpoint
orthogonality; the per-step quota differs from ``d/2/(m−1)`` by at most
one bit.
"""

from __future__ import annotations

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import BIT_DTYPE
from .base import BasisSet

__all__ = ["LegacyLevelBasis"]


class LegacyLevelBasis(BasisSet):
    """Sequential-flip level-hypervectors with deterministic distances.

    Parameters
    ----------
    size:
        Number of levels ``m ≥ 2``.
    dim:
        Hyperspace dimensionality ``d ≥ 2`` (needs at least one flip bit).
    seed:
        Randomness source.

    The realized distance between levels ``i`` and ``j`` is exactly
    ``(c_j − c_i) / d`` where ``c_k`` is the cumulative number of flipped
    bits up to level ``k`` — a fixed quantity given ``m`` and ``d``,
    independent of the random draw.  :meth:`expected_distance` returns this
    exact value (it is also the *realized* value, which is the point of
    the paper's critique).
    """

    def __init__(self, size: int, dim: int, seed: SeedLike = None) -> None:
        if size < 2:
            raise InvalidParameterError(f"a level set needs at least 2 levels, got {size}")
        if dim < 2:
            raise InvalidParameterError(f"dimension must be at least 2, got {dim}")
        rng = ensure_rng(seed)

        first = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
        flip_positions = rng.permutation(dim)[: dim // 2]
        blocks = np.array_split(flip_positions, size - 1)

        vectors = np.empty((size, dim), dtype=BIT_DTYPE)
        vectors[0] = first
        current = first.copy()
        cumulative = [0]
        for level, block in enumerate(blocks, start=1):
            current[block] ^= 1
            vectors[level] = current
            cumulative.append(cumulative[-1] + block.size)
        self._cumulative_flips = np.asarray(cumulative, dtype=np.int64)
        super().__init__(vectors)

    @property
    def cumulative_flips(self) -> np.ndarray:
        """``c_k``: number of bits flipped between ``L_1`` and ``L_{k+1}``."""
        return self._cumulative_flips

    def expected_distance(self, i: int, j: int) -> float:
        """Exact (deterministic) distance ``(c_j − c_i)/d`` for ``i ≤ j``."""
        m = len(self)
        if not (-m <= i < m and -m <= j < m):
            raise IndexError(f"index out of range for a basis of size {m}")
        i %= m
        j %= m
        lo, hi = sorted((i, j))
        flips = self._cumulative_flips[hi] - self._cumulative_flips[lo]
        return float(flips) / self.dim
