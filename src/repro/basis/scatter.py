"""Scatter codes: the random-walk scalar encoding of Section 4.2.

Before proposing Algorithm 1, the paper discusses an "intuitive idea":
start from a random ``L_1`` and create each level ``L_j`` by performing a
number of uniformly random single-bit flips ``𭟋_{1,j}`` chosen so the
walk relates to the target distance ``Δ_{1,j}`` — the *scatter codes* of
Smith & Stanford [37].  Because flips may revisit positions, the resulting
input-to-similarity mapping is nonlinear, which is why the paper moves on
to the interpolation method for a linear mapping.

Two flip-count rules are provided (see
:mod:`repro.markov.absorption` for the distinction):

* ``"absorption"`` (the paper's description) — ``𭟋`` is the expected
  number of flips until the walk *first reaches* distance ``Δ·d``,
  obtained from the tridiagonal system;
* ``"exact"`` — the flip count whose *expected resulting distance* equals
  ``Δ`` exactly: ``F = ln(1 − 2Δ) / ln(1 − 2/d)``.

With ``"exact"`` the anchored distances ``E[δ(L_1, L_j)] = Δ_{1,j}`` hold
exactly; with ``"absorption"`` they hold approximately (overshooting
slightly because the walk's stopping rule and the expectation differ).
Non-anchored pairs combine nonlinearly in both modes:
``E[δ(L_i, L_j)] = q_i + q_j − 2 q_i q_j`` where ``q_k`` is the per-bit
flip probability of member ``k`` — the scatter nonlinearity.
"""

from __future__ import annotations

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import BIT_DTYPE
from ..markov.absorption import expected_absorption_steps, flips_for_expected_distance
from .base import BasisSet
from .rvalue import xor_combine

__all__ = ["ScatterBasis"]

_FLIP_MODES = ("exact", "absorption")


class ScatterBasis(BasisSet):
    """Random-walk (scatter-code) level hypervectors.

    Parameters
    ----------
    size:
        Number of levels ``m ≥ 2``.
    dim:
        Hyperspace dimensionality ``d ≥ 2``.
    flips:
        ``"exact"`` (default) or ``"absorption"``; see the module
        docstring.
    seed:
        Randomness source.
    """

    def __init__(
        self,
        size: int,
        dim: int,
        flips: str = "exact",
        seed: SeedLike = None,
    ) -> None:
        if size < 2:
            raise InvalidParameterError(f"a scatter set needs at least 2 levels, got {size}")
        if dim < 2:
            raise InvalidParameterError(f"dimension must be at least 2, got {dim}")
        if flips not in _FLIP_MODES:
            raise InvalidParameterError(
                f"flips must be one of {_FLIP_MODES}, got {flips!r}"
            )
        self.flip_mode = flips
        rng = ensure_rng(seed)

        anchor = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
        vectors = np.empty((size, dim), dtype=BIT_DTYPE)
        vectors[0] = anchor
        flip_counts = np.zeros(size, dtype=np.int64)
        for j in range(1, size):
            delta = j / (2.0 * (size - 1))  # Δ_{1, j+1} of the paper
            flip_counts[j] = self._flip_count(dim, delta)
            vectors[j] = self._walk(anchor, flip_counts[j], rng)
        self._flip_counts = flip_counts
        super().__init__(vectors)

    def _flip_count(self, dim: int, delta: float) -> int:
        if self.flip_mode == "absorption":
            target_bits = max(1, int(round(delta * dim)))
            return int(round(expected_absorption_steps(dim, target_bits)))
        # "exact": match the expected distance; Δ = 1/2 needs infinitely many
        # flips, so the final level uses enough flips to be fully mixed
        # (per-bit flip probability within 1e-9 of 1/2).
        if delta >= 0.5 - 1e-12:
            mixing = np.log(2e-9) / np.log1p(-2.0 / dim)
            return int(np.ceil(mixing))
        return int(round(flips_for_expected_distance(dim, delta)))

    @staticmethod
    def _walk(anchor: np.ndarray, steps: int, rng: np.random.Generator) -> np.ndarray:
        """Apply ``steps`` uniformly random single-bit flips to a copy.

        Sequential flips commute, so the final state only depends on the
        per-position flip parity — computed in one vectorised pass.
        """
        if steps == 0:
            return anchor.copy()
        positions = rng.integers(0, anchor.size, size=int(steps))
        parity = (np.bincount(positions, minlength=anchor.size) & 1).astype(BIT_DTYPE)
        return np.bitwise_xor(anchor, parity)

    @property
    def flip_counts(self) -> np.ndarray:
        """Number of random flips used to create each member (member 0: 0)."""
        return self._flip_counts

    def per_bit_flip_probability(self, index: int) -> float:
        """``q_k``: probability a given bit of member ``k`` differs from ``L_1``."""
        m = len(self)
        if not (-m <= index < m):
            raise IndexError(f"index out of range for a basis of size {m}")
        steps = int(self._flip_counts[index % m])
        return float((1.0 - (1.0 - 2.0 / self.dim) ** steps) / 2.0)

    def expected_distance(self, i: int, j: int) -> float:
        """``E[δ]`` from the independent-walk combination rule."""
        m = len(self)
        if not (-m <= i < m and -m <= j < m):
            raise IndexError(f"index out of range for a basis of size {m}")
        i %= m
        j %= m
        if i == j:
            return 0.0
        return xor_combine(
            self.per_bit_flip_probability(i), self.per_bit_flip_probability(j)
        )
