"""Interpolation-based level-hypervectors — Algorithm 1 of the paper.

The paper's first contribution: instead of flipping a fixed quota of bits
per level (the legacy method, :mod:`repro.basis.level_legacy`), draw two
uniform anchors ``L_1`` and ``L_m`` plus a per-dimension filter
``Φ ~ U[0, 1]^d``, and build every intermediate level by taking bit ``∂``
from ``L_1`` when ``Φ(∂) < τ_l`` (with ``τ_l = (m − l)/(m − 1)``) and from
``L_m`` otherwise.

Proposition 4.1: the pairwise distances then hold *in expectation*,
``E[δ(L_i, L_j)] = Δ_{i,j} = (j − i) / (2 (m − 1))``, which enlarges the
sample space of the generation process and therefore its Shannon
information content (Section 4.1) relative to the deterministic-distance
legacy sets.

Setting ``r > 0`` generalises the construction per Section 5.2 (the chain
becomes a concatenation of shorter sub-sets; ``r = 1`` degenerates to a
random basis).  A custom *profile* (this library's extension) warps the
threshold schedule to realise any monotone expected-distance curve, which
subsumes nonlinear scalar encodings such as scatter codes but with the
interpolation method's information-content benefits.
"""

from __future__ import annotations

import math
from typing import Callable, Union

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError
from ..hdc.hypervector import BIT_DTYPE
from .base import BasisSet
from .rvalue import chain_flip_probability, interpolated_chain, transitions_per_subset

__all__ = ["LevelBasis", "PROFILES"]

ProfileLike = Union[str, Callable[[np.ndarray], np.ndarray]]

#: Named threshold-warp profiles: monotone maps of [0, 1] onto [0, 1].
PROFILES: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "linear": lambda u: u,
    "quadratic": lambda u: u**2,
    "sqrt": np.sqrt,
    "cosine": lambda u: (1.0 - np.cos(np.pi * u)) / 2.0,
}


def _resolve_profile(profile: ProfileLike) -> Callable[[np.ndarray], np.ndarray]:
    if callable(profile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise InvalidParameterError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)} or pass a callable"
        ) from None


class LevelBasis(BasisSet):
    """Linearly correlated basis-hypervectors via interpolation filters.

    Parameters
    ----------
    size:
        Number of levels ``m ≥ 2``.
    dim:
        Hyperspace dimensionality ``d``.
    r:
        Section 5.2 interpolation hyperparameter in ``[0, 1]``:
        ``0`` = pure Algorithm 1, ``1`` = random basis.  Only the default
        linear profile supports ``r > 0``.
    profile:
        Name in :data:`PROFILES` or a monotone callable ``g`` mapping
        ``[0, 1] → [0, 1]``; the expected distances become
        ``|g(u_j) − g(u_i)| / 2`` with ``u_l = (l − 1)/(m − 1)``.
        Extension beyond the paper (the paper's Algorithm 1 is the
        ``"linear"`` profile).
    seed:
        Randomness source.

    Example
    -------
    >>> basis = LevelBasis(size=100, dim=10_000, seed=3)
    >>> emb = basis.linear_embedding(-10.0, 40.0)   # e.g. temperatures
    >>> hv = emb.encode(21.7)
    """

    def __init__(
        self,
        size: int,
        dim: int,
        r: float = 0.0,
        profile: ProfileLike = "linear",
        seed: SeedLike = None,
    ) -> None:
        if size < 2:
            raise InvalidParameterError(f"a level set needs at least 2 levels, got {size}")
        if dim < 1:
            raise InvalidParameterError(f"dimension must be positive, got {dim}")
        self.r = float(r)
        if not (0.0 <= self.r <= 1.0) or not math.isfinite(self.r):
            raise InvalidParameterError(f"r must lie in [0, 1], got {r}")

        is_linear = (not callable(profile)) and profile == "linear"
        if not is_linear and self.r != 0.0:
            raise InvalidParameterError(
                "custom profiles are only supported with r = 0 "
                "(the r-interpolation already reshapes the schedule)"
            )
        self._profile_name = profile if not callable(profile) else "<callable>"

        if is_linear:
            self._positions = None
            vectors = interpolated_chain(size, dim, r=self.r, seed=seed)
        else:
            g = _resolve_profile(profile)
            u = np.linspace(0.0, 1.0, size)
            positions = np.asarray(g(u), dtype=np.float64)
            self._validate_positions(positions)
            vectors = self._generate_profiled(positions, dim, seed)
            self._positions = positions
        super().__init__(vectors)

    @staticmethod
    def _validate_positions(positions: np.ndarray) -> None:
        if positions.ndim != 1:
            raise InvalidParameterError("profile must map a vector to a vector")
        if not np.isfinite(positions).all():
            raise InvalidParameterError("profile produced non-finite positions")
        if abs(positions[0]) > 1e-9 or abs(positions[-1] - 1.0) > 1e-9:
            raise InvalidParameterError(
                "profile must satisfy g(0) = 0 and g(1) = 1, got "
                f"g(0)={positions[0]}, g(1)={positions[-1]}"
            )
        if np.any(np.diff(positions) < -1e-12):
            raise InvalidParameterError("profile must be monotone non-decreasing")

    @staticmethod
    def _generate_profiled(
        positions: np.ndarray, dim: int, seed: SeedLike
    ) -> np.ndarray:
        """Algorithm 1 with thresholds ``τ_l = 1 − g(u_l)``."""
        rng = ensure_rng(seed)
        first = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
        last = rng.integers(0, 2, size=dim, dtype=BIT_DTYPE)
        phi = rng.random(dim)
        vectors = np.empty((positions.size, dim), dtype=BIT_DTYPE)
        for l, pos in enumerate(positions):
            tau = 1.0 - pos
            vectors[l] = np.where(phi < tau, first, last)
        return vectors

    @property
    def profile_name(self) -> str:
        """The profile used to shape the threshold schedule."""
        return self._profile_name

    @property
    def transitions_per_subset(self) -> float:
        """Sub-set width ``n = r + (1 − r)(m − 1)`` (Section 5.2)."""
        return transitions_per_subset(len(self), self.r)

    def expected_distance(self, i: int, j: int) -> float:
        """Theoretical ``E[δ(L_i, L_j)]``.

        * linear profile: the segmented-chain probability, which reduces to
          the paper's ``Δ_{i,j} = (j − i)/(2(m − 1))`` when ``r = 0``;
        * custom profile: ``|g(u_j) − g(u_i)| / 2``.
        """
        m = len(self)
        if not (-m <= i < m and -m <= j < m):
            raise IndexError(f"index out of range for a basis of size {m}")
        i %= m
        j %= m
        if self._positions is not None:
            return float(abs(self._positions[j] - self._positions[i]) / 2.0)
        n = self.transitions_per_subset
        return chain_flip_probability(float(i), float(j), n, float(m - 1))
