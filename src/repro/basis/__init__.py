"""Basis-hypervector sets — the paper's central subject.

Four stochastic constructions for the atomic layer of HDC encodings:

* :class:`~repro.basis.random_basis.RandomBasis` — uncorrelated symbols
  (Section 3.1),
* :class:`~repro.basis.level_legacy.LegacyLevelBasis` — the pre-existing
  sequential-flip level sets (Section 4 background),
* :class:`~repro.basis.level.LevelBasis` — the paper's interpolation-based
  level sets (Algorithm 1, contribution 1), with the Section 5.2
  ``r``-hyperparameter and optional threshold profiles,
* :class:`~repro.basis.circular.CircularBasis` — circular-hypervectors for
  angular/periodic data (Section 5.1, the main contribution), also with
  ``r``,
* :class:`~repro.basis.scatter.ScatterBasis` — the Section 4.2 random-walk
  scatter codes, built on the Markov absorption solver.

Every set derives from :class:`~repro.basis.base.BasisSet` and can be
coupled with a ξ-grid (:mod:`repro.basis.quantize`) into an
:class:`~repro.basis.base.Embedding` — the encoding function φ of the
paper.
"""

from .base import BasisSet, Embedding
from .circular import CircularBasis
from .level import PROFILES, LevelBasis
from .level_legacy import LegacyLevelBasis
from .quantize import CircularDiscretizer, Discretizer, LinearDiscretizer
from .random_basis import RandomBasis
from .rvalue import (
    chain_flip_probability,
    interpolated_chain,
    transitions_per_subset,
    xor_combine,
)
from .scatter import ScatterBasis

__all__ = [
    "BasisSet",
    "Embedding",
    "RandomBasis",
    "LevelBasis",
    "LegacyLevelBasis",
    "CircularBasis",
    "ScatterBasis",
    "PROFILES",
    "Discretizer",
    "LinearDiscretizer",
    "CircularDiscretizer",
    "chain_flip_probability",
    "interpolated_chain",
    "transitions_per_subset",
    "xor_combine",
]


def make_basis(
    kind: str,
    size: int,
    dim: int,
    r: float = 0.0,
    seed=None,
) -> BasisSet:
    """Factory used by the experiment drivers: build a basis set by name.

    ``kind`` is one of ``"random"``, ``"level"``, ``"level-legacy"``,
    ``"circular"``, ``"scatter"``.  The ``r`` hyperparameter applies to
    ``"level"`` and ``"circular"`` and is ignored (must be 0) elsewhere.
    """
    from ..exceptions import InvalidParameterError

    kind = kind.lower()
    if kind == "random":
        if r != 0.0:
            raise InvalidParameterError("r is not applicable to random bases")
        return RandomBasis(size, dim, seed=seed)
    if kind == "level":
        return LevelBasis(size, dim, r=r, seed=seed)
    if kind in ("level-legacy", "legacy"):
        if r != 0.0:
            raise InvalidParameterError("r is not applicable to legacy level bases")
        return LegacyLevelBasis(size, dim, seed=seed)
    if kind == "circular":
        return CircularBasis(size, dim, r=r, seed=seed)
    if kind == "scatter":
        if r != 0.0:
            raise InvalidParameterError("r is not applicable to scatter bases")
        return ScatterBasis(size, dim, seed=seed)
    raise InvalidParameterError(
        f"unknown basis kind {kind!r}; expected one of "
        "'random', 'level', 'level-legacy', 'circular', 'scatter'"
    )


__all__.append("make_basis")
