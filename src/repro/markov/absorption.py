"""Expected absorption times of the bit-flip chain (Section 4.2).

The paper models repeated single-bit flips as a Markov chain over Hamming
distance states and asks: starting from a hypervector ``L_i``, how many
uniformly random flips ``𭟋`` are expected until the walk first reaches
Hamming distance ``Δ·d``?  With ``u(k)`` the expected absorption time from
state ``k`` the recurrence is

* ``u(0) = 1 + u(1)``,
* ``u(k) = 1 + ((d − k) u(k+1) + k u(k−1)) / d`` for ``0 < k < K``,
* ``u(K) = 0``,

a tridiagonal linear system of size ``K = Δ·d``.  This module solves it
three ways (for cross-validation in the tests):

1. :func:`absorption_time_profile` — the O(K) Thomas algorithm on the
   tridiagonal system (the paper's suggested route, citing Stone [38]),
2. :func:`expected_flips_ladder` — the birth–death "ladder" closed form,
3. ``BirthDeathChain.absorption_times_dense`` / ``simulate_absorption`` —
   dense solve and Monte-Carlo (in :mod:`repro.markov.chain`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from .tridiagonal import solve_tridiagonal

__all__ = [
    "absorption_time_profile",
    "expected_absorption_steps",
    "expected_flips_ladder",
    "flips_for_expected_distance",
]


def _validate(dim: int, target_bits: int) -> tuple[int, int]:
    if not isinstance(dim, (int, np.integer)) or isinstance(dim, bool) or dim < 1:
        raise InvalidParameterError(f"dim must be a positive integer, got {dim!r}")
    if (
        not isinstance(target_bits, (int, np.integer))
        or isinstance(target_bits, bool)
        or not 1 <= target_bits <= dim
    ):
        raise InvalidParameterError(
            f"target_bits must be an integer in [1, {dim}], got {target_bits!r}"
        )
    return int(dim), int(target_bits)


def absorption_time_profile(dim: int, target_bits: int) -> np.ndarray:
    """Solve the Section 4.2 system; returns ``u(0), …, u(K − 1)``.

    Row ``0`` encodes ``u(0) − u(1) = 1``; row ``k`` (``0 < k < K``)
    encodes ``−k·u(k−1) + d·u(k) − (d − k)·u(k+1) = d`` with ``u(K) = 0``
    folded into the last row.  The system matrix is irreducibly diagonally
    dominant, so the pivot-free Thomas algorithm is stable here.
    """
    dim, target = _validate(dim, target_bits)
    if target == 1:
        # From state 0 any flip moves away, so absorption takes exactly 1 step.
        return np.array([1.0])

    k = np.arange(1, target, dtype=np.float64)  # states 1 … K-1
    diag = np.concatenate(([1.0], np.full(target - 1, float(dim))))
    upper = np.concatenate(([-1.0], -(dim - k[:-1]))) if target > 2 else np.array([-1.0])
    lower = -k
    rhs = np.concatenate(([1.0], np.full(target - 1, float(dim))))
    return solve_tridiagonal(lower, diag, upper, rhs)


def expected_absorption_steps(dim: int, target_bits: int) -> float:
    """``𭟋 = u(0)``: expected flips from distance 0 to distance ``target_bits``."""
    return float(absorption_time_profile(dim, target_bits)[0])


def expected_flips_ladder(dim: int, target_bits: int) -> float:
    """Closed-form cross-check via first-passage ("ladder") times.

    Let ``t_j`` be the expected time for the first passage ``j → j + 1``.
    Conditioning on the first move gives
    ``t_j = d / (d − j) + j / (d − j) · t_{j−1}`` with ``t_0 = 1``; the
    absorption time from 0 is ``u(0) = Σ_{j<K} t_j``.  Algebraically equal
    to the tridiagonal solution; numerically independent of it.
    """
    dim, target = _validate(dim, target_bits)
    total = 0.0
    t_prev = 0.0
    for j in range(target):
        t_j = (dim + j * t_prev) / (dim - j)
        total += t_j
        t_prev = t_j
    return total


def flips_for_expected_distance(dim: int, delta: float) -> float:
    """Number of i.i.d. random flips giving expected distance ``delta``.

    A subtly different question from absorption time: after ``F``
    uniformly random flips (with replacement) each bit has been flipped an
    odd number of times with probability ``(1 − (1 − 2/d)^F)/2``, so

    ``E[δ] = (1 − (1 − 2/d)^F) / 2``  ⇒
    ``F = ln(1 − 2δ) / ln(1 − 2/d)``.

    The paper's 𭟋 (an *absorption* time) and this ``F`` (an
    *expectation-matching* flip count) agree closely for small ``δ`` and
    diverge as ``δ → 1/2`` (where ``F → ∞`` but the absorption time stays
    finite).  :class:`~repro.basis.scatter.ScatterBasis` offers both.
    """
    dim = _validate(dim, 1)[0]
    if dim < 2:
        raise InvalidParameterError("dim must be at least 2 for distance matching")
    if not 0.0 <= delta < 0.5:
        raise InvalidParameterError(
            f"delta must lie in [0, 0.5) for a finite flip count, got {delta}"
        )
    if delta == 0.0:
        return 0.0
    return float(np.log1p(-2.0 * delta) / np.log1p(-2.0 / dim))
