"""Tridiagonal linear solver (Thomas algorithm).

Section 4.2 of the paper reduces the expected-absorption-time recurrence
of the bit-flip Markov chain to "a solvable tridiagonal linear system"
(citing Stone [38]).  This module implements the O(n) sequential Thomas
algorithm from scratch; :mod:`repro.markov.absorption` builds the actual
system and the tests cross-check the solution against a dense
``numpy.linalg.solve`` and against Monte-Carlo simulation.

The Thomas algorithm is the standard forward-elimination / back-
substitution scheme.  It does not pivot, so it requires the matrix to be
nonsingular with nonzero pivots along the sweep — guaranteed for the
diagonally dominant systems produced by absorbing birth–death chains.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["solve_tridiagonal"]


def solve_tridiagonal(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
) -> np.ndarray:
    """Solve ``A x = rhs`` for tridiagonal ``A`` in O(n) time and memory.

    Parameters
    ----------
    lower:
        Sub-diagonal, length ``n − 1`` (``lower[i]`` multiplies ``x[i]`` in
        row ``i + 1``).
    diag:
        Main diagonal, length ``n``.
    upper:
        Super-diagonal, length ``n − 1`` (``upper[i]`` multiplies
        ``x[i + 1]`` in row ``i``).
    rhs:
        Right-hand side, length ``n``.

    Returns
    -------
    numpy.ndarray
        Solution vector ``x`` of length ``n`` (float64).

    Raises
    ------
    InvalidParameterError
        On inconsistent lengths or a zero pivot (singular or
        pivoting-required matrix).
    """
    diag = np.asarray(diag, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)

    n = diag.shape[0]
    if n == 0:
        raise InvalidParameterError("empty system")
    if rhs.shape != (n,):
        raise InvalidParameterError(f"rhs must have length {n}, got {rhs.shape}")
    if n == 1:
        if lower.size or upper.size:
            raise InvalidParameterError("off-diagonals must be empty for n = 1")
        if diag[0] == 0:
            raise InvalidParameterError("singular 1x1 system")
        return rhs / diag
    if lower.shape != (n - 1,) or upper.shape != (n - 1,):
        raise InvalidParameterError(
            f"off-diagonals must have length {n - 1}, got "
            f"{lower.shape} and {upper.shape}"
        )

    # Forward sweep: eliminate the sub-diagonal.
    c_prime = np.empty(n - 1, dtype=np.float64)
    d_prime = np.empty(n, dtype=np.float64)
    beta = diag[0]
    if beta == 0:
        raise InvalidParameterError("zero pivot in row 0; Thomas algorithm cannot proceed")
    c_prime[0] = upper[0] / beta
    d_prime[0] = rhs[0] / beta
    for i in range(1, n):
        beta = diag[i] - lower[i - 1] * c_prime[i - 1]
        if beta == 0:
            raise InvalidParameterError(
                f"zero pivot in row {i}; Thomas algorithm cannot proceed"
            )
        if i < n - 1:
            c_prime[i] = upper[i] / beta
        d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / beta

    # Back substitution.
    x = np.empty(n, dtype=np.float64)
    x[n - 1] = d_prime[n - 1]
    for i in range(n - 2, -1, -1):
        x[i] = d_prime[i] - c_prime[i] * x[i + 1]
    return x
