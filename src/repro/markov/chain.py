"""Generic birth–death Markov chains with one absorbing barrier.

The bit-flip process of Section 4.2 is a birth–death chain on Hamming
distances ``{0, 1/d, …}``: from distance state ``k`` a uniformly random
single-bit flip moves *away* from the origin with probability
``(d − k)/d`` and *back* with probability ``k/d``.  This module provides
the general chain — transition matrix, expected absorption times by dense
solve, and Monte-Carlo simulation — which the tests use to validate the
specialised O(n) solver in :mod:`repro.markov.absorption`.
"""

from __future__ import annotations

import numpy as np

from .._rng import SeedLike, ensure_rng
from ..exceptions import InvalidParameterError

__all__ = ["BirthDeathChain"]


class BirthDeathChain:
    """Birth–death chain on states ``{0, …, K}`` with ``K`` absorbing.

    Parameters
    ----------
    up:
        ``up[k]`` = probability of moving ``k → k + 1`` for
        ``k ∈ {0, …, K − 1}``.
    down:
        ``down[k]`` = probability of moving ``k → k − 1`` for the same
        states (``down[0]`` must be 0).  ``up[k] + down[k] ≤ 1``; the
        remainder is the probability of staying put.
    """

    def __init__(self, up: np.ndarray, down: np.ndarray) -> None:
        up = np.asarray(up, dtype=np.float64)
        down = np.asarray(down, dtype=np.float64)
        if up.ndim != 1 or up.shape != down.shape or up.size == 0:
            raise InvalidParameterError(
                "up and down must be equal-length non-empty 1-D arrays"
            )
        if np.any(up < 0) or np.any(down < 0) or np.any(up + down > 1 + 1e-12):
            raise InvalidParameterError("probabilities must satisfy 0 ≤ up+down ≤ 1")
        if down[0] != 0:
            raise InvalidParameterError("down[0] must be 0 (no state below 0)")
        if np.any(up == 0):
            # A birth–death walk reaches the barrier only through every
            # intermediate state, so any zero up-probability blocks it.
            blocked = np.nonzero(up == 0)[0]
            raise InvalidParameterError(
                f"up-probability is zero at state(s) {blocked.tolist()}; "
                "the absorbing barrier would be unreachable"
            )
        self.up = up
        self.down = down

    @property
    def num_transient(self) -> int:
        """Number of transient states (``K``)."""
        return self.up.size

    def transition_matrix(self) -> np.ndarray:
        """Full ``(K + 1) × (K + 1)`` row-stochastic matrix, barrier last."""
        k = self.num_transient
        mat = np.zeros((k + 1, k + 1), dtype=np.float64)
        for state in range(k):
            mat[state, state + 1] = self.up[state]
            if state > 0:
                mat[state, state - 1] = self.down[state]
            mat[state, state] = 1.0 - self.up[state] - self.down[state]
        mat[k, k] = 1.0
        return mat

    def absorption_times_dense(self) -> np.ndarray:
        """Expected steps to absorption from each transient state.

        Solves ``(I − Q) u = 1`` with the dense transient block ``Q`` —
        O(K³), used as the ground truth the fast tridiagonal path is
        verified against.
        """
        k = self.num_transient
        q = self.transition_matrix()[:k, :k]
        return np.linalg.solve(np.eye(k) - q, np.ones(k))

    def simulate_absorption(
        self, start: int = 0, trials: int = 1000, seed: SeedLike = None,
        max_steps: int = 10_000_000,
    ) -> np.ndarray:
        """Monte-Carlo sample of absorption times from ``start``.

        Returns an array of ``trials`` step counts.  Raises if any
        trajectory exceeds ``max_steps`` (which signals a mis-specified
        chain rather than bad luck for the chains used here).
        """
        k = self.num_transient
        if not 0 <= start <= k:
            raise InvalidParameterError(f"start must be in [0, {k}], got {start}")
        rng = ensure_rng(seed)
        times = np.empty(trials, dtype=np.int64)
        for t in range(trials):
            state = start
            steps = 0
            while state < k:
                if steps >= max_steps:
                    raise InvalidParameterError(
                        f"trajectory exceeded {max_steps} steps; chain appears "
                        "not to absorb"
                    )
                roll = rng.random()
                if roll < self.up[state]:
                    state += 1
                elif roll < self.up[state] + self.down[state]:
                    state -= 1
                steps += 1
            times[t] = steps
        return times

    @classmethod
    def bit_flip_chain(cls, dim: int, target_bits: int) -> "BirthDeathChain":
        """The Section 4.2 chain: Hamming-distance walk under random flips.

        State ``k`` = current Hamming distance (in bits) from the origin
        hypervector; a uniformly random flip moves up with probability
        ``(d − k)/d``, down with ``k/d``; state ``target_bits`` absorbs.
        """
        if dim < 1:
            raise InvalidParameterError(f"dim must be positive, got {dim}")
        if not 1 <= target_bits <= dim:
            raise InvalidParameterError(
                f"target_bits must be in [1, {dim}], got {target_bits}"
            )
        states = np.arange(target_bits, dtype=np.float64)
        up = (dim - states) / dim
        down = states / dim
        return cls(up, down)
