"""Markov-chain machinery behind Section 4.2 of the paper.

The bit-flip process that motivates scatter codes is an absorbing
birth–death chain over Hamming-distance states.  This subpackage provides
the chain itself (:class:`~repro.markov.chain.BirthDeathChain`), the O(K)
tridiagonal solver (:func:`~repro.markov.tridiagonal.solve_tridiagonal`,
Thomas algorithm), and the absorption-time computations used by
:class:`~repro.basis.scatter.ScatterBasis`.
"""

from .absorption import (
    absorption_time_profile,
    expected_absorption_steps,
    expected_flips_ladder,
    flips_for_expected_distance,
)
from .chain import BirthDeathChain
from .tridiagonal import solve_tridiagonal

__all__ = [
    "BirthDeathChain",
    "solve_tridiagonal",
    "absorption_time_profile",
    "expected_absorption_steps",
    "expected_flips_ladder",
    "flips_for_expected_distance",
]
